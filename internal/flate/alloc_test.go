//go:build !race

package flate_test

// Allocation gates for the pooled compression plane. The encoder state
// (matcher, token buffer, frequency/code tables, bit writer) is reused via
// sync.Pool, so a steady-state compression allocates O(1) objects — the
// output buffer plus pool bookkeeping — regardless of how many 16k-token
// blocks the input spans. Excluded under the race detector, whose
// instrumentation inflates the counts.

import (
	"io"
	"testing"

	ours "repro/internal/flate"
	"repro/internal/lz77"
	"repro/internal/workload"
)

// TestDeflateSteadyStateAllocs: the seed encoder allocated thousands of
// objects per 512 KiB op (fresh matcher, per-block trees, per-symbol
// scratch); the pooled path must stay within a fixed small budget. The
// bound of 80 is ~6x headroom over the measured ~12 for a 256 KiB input
// (dominated by the output buffer growth) and over 100x below the seed.
func TestDeflateSteadyStateAllocs(t *testing.T) {
	data := workload.Generate(workload.ClassSource, 256*1024, 7)
	// Warm every pool on this goroutine.
	if _, err := ours.GzipCompress(data, 9); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ours.GzipCompress(data, 9); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 80 {
		t.Errorf("GzipCompress allocates %.1f objects per 256 KiB op, want <= 80 (encoder state not pooled?)", allocs)
	}
}

// TestStreamingWriterSteadyAllocs: the streaming Writer must reuse one
// block encoder across its 1 MiB segments instead of building a fresh one
// per segment. The remaining per-block cost is the two sort.Slice objects
// inside the tree builder (~27 per XML segment), so a 4-segment stream
// measures ~115; the budget of 160 leaves headroom while still catching a
// reintroduced per-segment encoder (which adds the token buffer and state
// arrays for every segment).
func TestStreamingWriterSteadyAllocs(t *testing.T) {
	data := workload.Generate(workload.ClassXML, 4<<20, 3)
	run := func() {
		zw, err := ours.NewWriter(io.Discard, 6)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := zw.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm pools
	allocs := testing.AllocsPerRun(5, func() { run() })
	if allocs > 160 {
		t.Errorf("streaming Writer allocates %.1f objects per 4 MiB stream, want <= 160 (per-segment encoder leak?)", allocs)
	}
}

// TestMatcherPoolReuse: a recycled matcher must behave identically to a
// fresh one at its level.
func TestMatcherPoolReuse(t *testing.T) {
	data := workload.Generate(workload.ClassWebLog, 96*1024, 9)
	for level := 1; level <= 9; level++ {
		fresh, err := lz77.NewMatcher(level)
		if err != nil {
			t.Fatal(err)
		}
		var want []lz77.Token
		fresh.Tokenize(data, func(tok lz77.Token) { want = append(want, tok) })

		m, err := lz77.GetMatcher(level)
		if err != nil {
			t.Fatal(err)
		}
		lz77.PutMatcher(m) // recycle once so the pooled path is exercised
		m, err = lz77.GetMatcher(level)
		if err != nil {
			t.Fatal(err)
		}
		var got []lz77.Token
		m.Tokenize(data, func(tok lz77.Token) { got = append(got, tok) })
		lz77.PutMatcher(m)

		if len(got) != len(want) {
			t.Fatalf("level %d: pooled matcher emitted %d tokens, fresh %d", level, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("level %d: token %d differs: pooled %+v fresh %+v", level, i, got[i], want[i])
			}
		}
	}
}
