package flate

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestGzipMutationNeverPanicsOrLies: for random single-byte mutations of a
// valid gzip stream, decompression must either fail or return exactly the
// original bytes (the CRC-32 trailer must catch every silent corruption).
func TestGzipMutationNeverPanicsOrLies(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	data := make([]byte, 40_000)
	for i := range data {
		data[i] = byte(rng.Intn(40)) // compressible
	}
	comp, err := GzipCompress(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for trial := 0; trial < 300; trial++ {
		bad := append([]byte{}, comp...)
		pos := rng.Intn(len(bad))
		bad[pos] ^= byte(1 + rng.Intn(255))
		out, err := GzipDecompress(bad, 4*len(data))
		if err == nil && !bytes.Equal(out, data) {
			wrong++
			t.Errorf("trial %d: mutation at %d decoded silently to different data", trial, pos)
		}
	}
	if wrong > 0 {
		t.Fatalf("%d silent corruptions", wrong)
	}
}

// TestGzipTruncationAlwaysFails: every strict prefix of a gzip stream must
// be rejected (the trailer is mandatory).
func TestGzipTruncationAlwaysFails(t *testing.T) {
	data := bytes.Repeat([]byte("truncation "), 2000)
	comp, err := GzipCompress(data, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 10, len(comp) / 4, len(comp) / 2, len(comp) - 9, len(comp) - 1} {
		if _, err := GzipDecompress(comp[:cut], 0); err == nil {
			t.Errorf("prefix of %d/%d bytes accepted", cut, len(comp))
		}
	}
}

// TestInflateBitFlipsBounded: raw DEFLATE has no checksum, so a bit flip
// may decode to different bytes — but it must never panic and never exceed
// the declared size limit.
func TestInflateBitFlipsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	data := make([]byte, 20_000)
	for i := range data {
		data[i] = byte(rng.Intn(8))
	}
	comp, err := CompressBytes(data, 9)
	if err != nil {
		t.Fatal(err)
	}
	const limit = 1 << 20
	for trial := 0; trial < 200; trial++ {
		bad := append([]byte{}, comp...)
		bad[rng.Intn(len(bad))] ^= 1 << uint(rng.Intn(8))
		out, err := Inflate(nil, bytesReader(bad), limit)
		if err == nil && len(out) > limit {
			t.Fatalf("trial %d: output %d exceeded limit", trial, len(out))
		}
	}
}

// TestDynamicHeaderEdgeCases exercises streams that use unusual but legal
// header encodings.
func TestDynamicHeaderEdgeCases(t *testing.T) {
	// Single repeated byte: one literal symbol + end marker; the dynamic
	// path degenerates to near-unary codes.
	for _, n := range []int{1, 2, 3, 257, 258, 259, 65535, 65536, 70000} {
		data := bytes.Repeat([]byte{'z'}, n)
		comp, err := CompressBytes(data, 9)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		out, err := DecompressBytes(comp)
		if err != nil || !bytes.Equal(out, data) {
			t.Fatalf("n=%d: round trip failed: %v", n, err)
		}
	}
}

// TestAllLengthAndDistanceCodes drives matches through every length and
// distance bucket of the DEFLATE tables.
func TestAllLengthAndDistanceCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	var data []byte
	// A unique seed phrase, then echoes at increasing distances with
	// increasing lengths.
	phrase := make([]byte, 300)
	rng.Read(phrase)
	data = append(data, phrase...)
	for dist := 1; dist <= 24577; dist *= 2 {
		pad := make([]byte, dist)
		rng.Read(pad)
		data = append(data, pad...)
		start := len(data) - dist
		if start < 0 {
			start = 0
		}
		n := 3 + rng.Intn(256)
		for k := 0; k < n; k++ {
			data = append(data, data[start+k])
		}
	}
	comp, err := CompressBytes(data, 9)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecompressBytes(comp)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("round trip failed: %v", err)
	}
}

// TestZlibHeaderCheckValue: the two-byte header must satisfy the mod-31
// check for every level.
func TestZlibHeaderCheckValue(t *testing.T) {
	for level := 1; level <= 9; level++ {
		comp, err := ZlibCompress([]byte("check"), level)
		if err != nil {
			t.Fatal(err)
		}
		if (uint16(comp[0])<<8|uint16(comp[1]))%31 != 0 {
			t.Errorf("level %d: header %x fails mod-31", level, comp[:2])
		}
	}
}

// TestGzipHeaderWithOptionalFields: decoder must skip FEXTRA/FNAME/FCOMMENT.
func TestGzipHeaderWithOptionalFields(t *testing.T) {
	data := []byte("optional header fields")
	comp, err := GzipCompress(data, 9)
	if err != nil {
		t.Fatal(err)
	}
	body := comp[10:]
	// Rebuild with FLG = FNAME|FCOMMENT|FEXTRA.
	hdr := []byte{0x1f, 0x8b, 8, 0x1c, 0, 0, 0, 0, 0, 3}
	withFields := append([]byte{}, hdr...)
	withFields = append(withFields, 4, 0, 'e', 'x', 't', 'r') // FEXTRA
	withFields = append(withFields, 'n', 'a', 'm', 'e', 0)    // FNAME
	withFields = append(withFields, 'c', 'o', 'm', 0)         // FCOMMENT
	withFields = append(withFields, body...)
	out, err := GzipDecompress(withFields, 0)
	if err != nil {
		t.Fatalf("optional fields rejected: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("content mismatch")
	}
}
