package flate

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/bitio"
	"repro/internal/huffman"
	"repro/internal/lz77"
)

// ErrCorrupt is returned when the DEFLATE stream is structurally invalid.
var ErrCorrupt = errors.New("flate: corrupt stream")

// Inflate decompresses a complete DEFLATE stream from r, appending to dst
// (which may be nil). maxSize, if positive, bounds the decompressed size to
// protect against decompression bombs.
func Inflate(dst []byte, r io.Reader, maxSize int) ([]byte, error) {
	br := bitio.NewLSBReader(r)
	for {
		final := br.ReadBits(1)
		btype := br.ReadBits(2)
		if err := br.Err(); err != nil {
			return nil, fmt.Errorf("%w: block header: %v", ErrCorrupt, err)
		}
		var err error
		switch btype {
		case 0:
			dst, err = inflateStored(dst, br, maxSize)
		case 1:
			dst, err = inflateHuffman(dst, br, fixedLitDecoder(), fixedDistDecoder(), maxSize)
		case 2:
			var litDec, distDec *huffman.Decoder
			litDec, distDec, err = readDynamicHeader(br)
			if err == nil {
				dst, err = inflateHuffman(dst, br, litDec, distDec, maxSize)
			}
		default:
			err = fmt.Errorf("%w: reserved block type", ErrCorrupt)
		}
		if err != nil {
			return nil, err
		}
		if final == 1 {
			return dst, nil
		}
	}
}

func inflateStored(dst []byte, br *bitio.LSBReader, maxSize int) ([]byte, error) {
	br.Align()
	n := br.ReadBits(16)
	nlen := br.ReadBits(16)
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("%w: stored header: %v", ErrCorrupt, err)
	}
	if n != ^nlen&0xffff {
		return nil, fmt.Errorf("%w: stored LEN/NLEN mismatch", ErrCorrupt)
	}
	if maxSize > 0 && len(dst)+int(n) > maxSize {
		return nil, fmt.Errorf("%w: output exceeds limit %d", ErrCorrupt, maxSize)
	}
	chunk := make([]byte, n)
	if err := br.ReadBytes(chunk); err != nil {
		return nil, fmt.Errorf("%w: stored payload: %v", ErrCorrupt, err)
	}
	return append(dst, chunk...), nil
}

// The fixed decoders are immutable after construction and safe to share.
var (
	fixedLit  = mustDecoder(fixedLitLengths())
	fixedDist = mustDecoder(fixedDistLengths())
)

func mustDecoder(lens []uint8) *huffman.Decoder {
	d, err := huffman.NewDecoder(lens)
	if err != nil {
		panic("flate: fixed code construction failed: " + err.Error())
	}
	return d
}

func fixedLitDecoder() *huffman.Decoder  { return fixedLit }
func fixedDistDecoder() *huffman.Decoder { return fixedDist }

func readDynamicHeader(br *bitio.LSBReader) (litDec, distDec *huffman.Decoder, err error) {
	nlit := int(br.ReadBits(5)) + 257
	ndist := int(br.ReadBits(5)) + 1
	hclen := int(br.ReadBits(4)) + 4
	if err := br.Err(); err != nil {
		return nil, nil, fmt.Errorf("%w: dynamic header: %v", ErrCorrupt, err)
	}
	if nlit > maxNumLit || ndist > maxNumDist {
		return nil, nil, fmt.Errorf("%w: nlit=%d ndist=%d out of range", ErrCorrupt, nlit, ndist)
	}
	clLens := make([]uint8, numCLSymbols)
	for i := 0; i < hclen; i++ {
		clLens[clOrder[i]] = uint8(br.ReadBits(3))
	}
	if err := br.Err(); err != nil {
		return nil, nil, fmt.Errorf("%w: CL lengths: %v", ErrCorrupt, err)
	}
	clDec, err := huffman.NewDecoder(clLens)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: CL code: %v", ErrCorrupt, err)
	}
	all := make([]uint8, nlit+ndist)
	for i := 0; i < len(all); {
		sym, err := clDec.DecodeLSB(br)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: CL symbol: %v", ErrCorrupt, err)
		}
		switch {
		case sym <= 15:
			all[i] = uint8(sym)
			i++
		case sym == 16:
			if i == 0 {
				return nil, nil, fmt.Errorf("%w: repeat with no previous length", ErrCorrupt)
			}
			rep := int(br.ReadBits(2)) + 3
			if i+rep > len(all) {
				return nil, nil, fmt.Errorf("%w: repeat overruns lengths", ErrCorrupt)
			}
			v := all[i-1]
			for k := 0; k < rep; k++ {
				all[i] = v
				i++
			}
		case sym == 17:
			rep := int(br.ReadBits(3)) + 3
			if i+rep > len(all) {
				return nil, nil, fmt.Errorf("%w: zero run overruns lengths", ErrCorrupt)
			}
			i += rep
		case sym == 18:
			rep := int(br.ReadBits(7)) + 11
			if i+rep > len(all) {
				return nil, nil, fmt.Errorf("%w: zero run overruns lengths", ErrCorrupt)
			}
			i += rep
		default:
			return nil, nil, fmt.Errorf("%w: CL symbol %d", ErrCorrupt, sym)
		}
	}
	if err := br.Err(); err != nil {
		return nil, nil, fmt.Errorf("%w: lengths: %v", ErrCorrupt, err)
	}
	litDec, err = huffman.NewDecoder(all[:nlit])
	if err != nil {
		return nil, nil, fmt.Errorf("%w: lit/len code: %v", ErrCorrupt, err)
	}
	distDec, err = huffman.NewDecoder(all[nlit:])
	if err != nil {
		return nil, nil, fmt.Errorf("%w: dist code: %v", ErrCorrupt, err)
	}
	return litDec, distDec, nil
}

// inflateHuffman is the inflate inner loop, restructured around the
// peek/consume bit reader and the table-driven Huffman kernels: one table
// probe per symbol instead of one reader call per bit, and back-reference
// copies move in chunks (doubling through the overlap when dist < length)
// instead of byte-at-a-time.
func inflateHuffman(dst []byte, br *bitio.LSBReader, litDec, distDec *huffman.Decoder, maxSize int) ([]byte, error) {
	for {
		sym, err := litDec.DecodeLSB(br)
		if err != nil {
			return nil, fmt.Errorf("%w: lit/len: %v", ErrCorrupt, err)
		}
		switch {
		case sym < 256:
			dst = append(dst, byte(sym))
		case sym == endBlockMarker:
			return dst, nil
		case sym <= 285:
			le := lengthTable[sym-257]
			length := int(le.base) + int(br.ReadBits(uint(le.extra)))
			dsym, err := distDec.DecodeLSB(br)
			if err != nil {
				return nil, fmt.Errorf("%w: dist: %v", ErrCorrupt, err)
			}
			if dsym >= maxNumDist {
				return nil, fmt.Errorf("%w: dist code %d", ErrCorrupt, dsym)
			}
			de := distTable[dsym]
			dist := int(de.base) + int(br.ReadBits(uint(de.extra)))
			if err := br.Err(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			if dist > len(dst) {
				return nil, fmt.Errorf("%w: distance %d beyond output %d", ErrCorrupt, dist, len(dst))
			}
			if length > lz77.MaxMatch {
				return nil, fmt.Errorf("%w: match length %d", ErrCorrupt, length)
			}
			if maxSize > 0 && len(dst)+length > maxSize {
				return nil, fmt.Errorf("%w: output exceeds limit %d", ErrCorrupt, maxSize)
			}
			start := len(dst) - dist
			if dist >= length {
				// Source and destination cannot overlap: one copy.
				dst = append(dst, dst[start:start+length]...)
			} else {
				// Overlapping copy: the run doubles each append.
				total := len(dst) + length
				for len(dst) < total {
					chunk := len(dst) - start
					if rem := total - len(dst); chunk > rem {
						chunk = rem
					}
					dst = append(dst, dst[start:start+chunk]...)
				}
			}
		default:
			return nil, fmt.Errorf("%w: lit/len symbol %d", ErrCorrupt, sym)
		}
		if maxSize > 0 && len(dst) > maxSize {
			return nil, fmt.Errorf("%w: output exceeds limit %d", ErrCorrupt, maxSize)
		}
	}
}

// DecompressBytes inflates a complete DEFLATE stream held in memory.
func DecompressBytes(data []byte) ([]byte, error) {
	return Inflate(nil, bytesReader(data), 0)
}

func bytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (s *sliceReader) Read(p []byte) (int, error) {
	if len(s.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.b)
	s.b = s.b[n:]
	return n, nil
}
