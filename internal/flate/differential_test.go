package flate_test

// Differential correctness tests for the fast decompression kernels: the
// table-driven inflate path must agree byte-for-byte with Go's standard
// library in both directions (our compressor -> stdlib decompressor, and
// stdlib compressor -> our decompressor) over the paper's workload corpus,
// at light/default/best effort, for all three containers (gzip, zlib, raw
// DEFLATE). A skew-frequency generator drives the dynamic Huffman trees
// toward the 15-bit depth limit so the second-level lookup tables are
// exercised, not just the 9-bit root.

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"compress/zlib"
	"io"
	"math/rand"
	"testing"

	ours "repro/internal/flate"
	"repro/internal/workload"
)

// differentialCorpus covers the paper's content classes plus adversarial
// shapes for the Huffman tables.
func differentialCorpus(t testing.TB) map[string][]byte {
	corpus := map[string][]byte{
		"empty": nil,
		"one":   {42},
		"runs":  bytes.Repeat([]byte{'r'}, 96*1024),
	}
	for _, c := range []struct {
		name  string
		class workload.Class
	}{
		{"source", workload.ClassSource},
		{"xml", workload.ClassXML},
		{"weblog", workload.ClassWebLog},
		{"binary", workload.ClassBinary},
		{"media", workload.ClassMedia}, // already-encoded: near-incompressible
		{"mail", workload.ClassMail},
	} {
		corpus[c.name] = workload.Generate(c.class, 128*1024, 7)
	}
	corpus["deepcode"] = deepCodeData(96 * 1024)
	return corpus
}

// deepCodeData draws bytes from a Fibonacci-decaying distribution: the
// literal frequencies span ~2^20, which pushes package-merge (and zlib's
// tree builder) to assign near-maximum 15-bit codes to the rare symbols.
func deepCodeData(n int) []byte {
	weights := make([]int, 40)
	a, b := 1, 1
	for i := range weights {
		weights[i] = a
		a, b = b, a+b
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	rng := rand.New(rand.NewSource(29))
	out := make([]byte, n)
	for i := range out {
		v := rng.Intn(total)
		for s, w := range weights {
			if v < w {
				out[i] = byte(s)
				break
			}
			v -= w
		}
	}
	return out
}

// TestDifferentialStdlibDecompressesOurs: everything our three
// compressors emit, the standard library must reproduce exactly.
func TestDifferentialStdlibDecompressesOurs(t *testing.T) {
	for name, data := range differentialCorpus(t) {
		for _, level := range []int{1, 6, 9} {
			comp, err := ours.GzipCompress(data, level)
			if err != nil {
				t.Fatalf("%s/%d: GzipCompress: %v", name, level, err)
			}
			zr, err := gzip.NewReader(bytes.NewReader(comp))
			if err != nil {
				t.Fatalf("%s/%d: stdlib gzip reader: %v", name, level, err)
			}
			got, err := io.ReadAll(zr)
			if err != nil {
				t.Fatalf("%s/%d: stdlib gzip read: %v", name, level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/%d: stdlib decodes our gzip differently", name, level)
			}

			comp, err = ours.ZlibCompress(data, level)
			if err != nil {
				t.Fatalf("%s/%d: ZlibCompress: %v", name, level, err)
			}
			wr, err := zlib.NewReader(bytes.NewReader(comp))
			if err != nil {
				t.Fatalf("%s/%d: stdlib zlib reader: %v", name, level, err)
			}
			got, err = io.ReadAll(wr)
			if err != nil {
				t.Fatalf("%s/%d: stdlib zlib read: %v", name, level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/%d: stdlib decodes our zlib differently", name, level)
			}

			comp, err = ours.CompressBytes(data, level)
			if err != nil {
				t.Fatalf("%s/%d: CompressBytes: %v", name, level, err)
			}
			fr := flate.NewReader(bytes.NewReader(comp))
			got, err = io.ReadAll(fr)
			if err != nil {
				t.Fatalf("%s/%d: stdlib flate read: %v", name, level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/%d: stdlib decodes our deflate differently", name, level)
			}
		}
	}
}

// TestDifferentialWeDecompressStdlib: everything the standard library's
// compressors emit, our table-driven inflate must reproduce exactly.
func TestDifferentialWeDecompressStdlib(t *testing.T) {
	for name, data := range differentialCorpus(t) {
		for _, level := range []int{1, 6, 9} {
			var buf bytes.Buffer
			zw, _ := gzip.NewWriterLevel(&buf, level)
			zw.Write(data)
			zw.Close()
			got, err := ours.GzipDecompress(buf.Bytes(), 0)
			if err != nil {
				t.Fatalf("%s/%d: GzipDecompress(stdlib): %v", name, level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/%d: we decode stdlib gzip differently", name, level)
			}

			buf.Reset()
			wr, _ := zlib.NewWriterLevel(&buf, level)
			wr.Write(data)
			wr.Close()
			got, err = ours.ZlibDecompress(buf.Bytes(), 0)
			if err != nil {
				t.Fatalf("%s/%d: ZlibDecompress(stdlib): %v", name, level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/%d: we decode stdlib zlib differently", name, level)
			}

			buf.Reset()
			fw, _ := flate.NewWriter(&buf, level)
			fw.Write(data)
			fw.Close()
			got, err = ours.DecompressBytes(buf.Bytes())
			if err != nil {
				t.Fatalf("%s/%d: DecompressBytes(stdlib): %v", name, level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/%d: we decode stdlib deflate differently", name, level)
			}
		}
	}
}

// TestDifferentialStreamingReader holds the incremental Reader equal to
// the stdlib over the corpus, read through a small buffer so the
// mid-block pause/resume path runs constantly.
func TestDifferentialStreamingReader(t *testing.T) {
	for name, data := range differentialCorpus(t) {
		var buf bytes.Buffer
		zw, _ := gzip.NewWriterLevel(&buf, 9)
		zw.Write(data)
		zw.Close()
		zr := ours.NewReader(bytes.NewReader(buf.Bytes()))
		var got bytes.Buffer
		if _, err := io.CopyBuffer(&got, zr, make([]byte, 777)); err != nil {
			t.Fatalf("%s: streaming read: %v", name, err)
		}
		if !bytes.Equal(got.Bytes(), data) {
			t.Fatalf("%s: streaming reader decodes stdlib gzip differently", name)
		}
	}
}

// TestDecompressAppendVariants: the append-capable entry points must
// extend the destination in place and only checksum the appended bytes.
func TestDecompressAppendVariants(t *testing.T) {
	data := workload.Generate(workload.ClassSource, 64*1024, 3)
	prefix := []byte("already-here")
	gz, err := ours.GzipCompress(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ours.GzipDecompressAppend(append([]byte(nil), prefix...), gz, 0)
	if err != nil {
		t.Fatalf("GzipDecompressAppend: %v", err)
	}
	if !bytes.Equal(out[:len(prefix)], prefix) || !bytes.Equal(out[len(prefix):], data) {
		t.Fatal("GzipDecompressAppend did not extend the prefix correctly")
	}
	zl, err := ours.ZlibCompress(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	out, err = ours.ZlibDecompressAppend(append([]byte(nil), prefix...), zl, 0)
	if err != nil {
		t.Fatalf("ZlibDecompressAppend: %v", err)
	}
	if !bytes.Equal(out[:len(prefix)], prefix) || !bytes.Equal(out[len(prefix):], data) {
		t.Fatal("ZlibDecompressAppend did not extend the prefix correctly")
	}
	// maxSize bounds the appended bytes, not the whole slice.
	if _, err := ours.GzipDecompressAppend(append([]byte(nil), prefix...), gz, len(data)); err != nil {
		t.Fatalf("append with exact budget: %v", err)
	}
	if _, err := ours.GzipDecompressAppend(nil, gz, len(data)-1); err == nil {
		t.Fatal("undersized budget not enforced")
	}
}

// FuzzGzipDifferential cross-checks both directions per input: our gzip
// must be stdlib-readable, and stdlib gzip must decode identically here.
func FuzzGzipDifferential(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("a"))
	f.Add(bytes.Repeat([]byte("ab"), 4096))
	f.Add(deepCodeData(4096)) // drives 15-bit Huffman codes
	f.Add(workload.Generate(workload.ClassSource, 8192, 1))
	f.Add(workload.Generate(workload.ClassMedia, 8192, 2))
	f.Fuzz(func(t *testing.T, data []byte) {
		comp, err := ours.GzipCompress(data, 9)
		if err != nil {
			t.Fatalf("GzipCompress: %v", err)
		}
		zr, err := gzip.NewReader(bytes.NewReader(comp))
		if err != nil {
			t.Fatalf("stdlib reader on our gzip: %v", err)
		}
		got, err := io.ReadAll(zr)
		if err != nil {
			t.Fatalf("stdlib read on our gzip: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("stdlib decodes our gzip differently")
		}
		var buf bytes.Buffer
		zw, _ := gzip.NewWriterLevel(&buf, 9)
		zw.Write(data)
		zw.Close()
		got, err = ours.GzipDecompress(buf.Bytes(), 0)
		if err != nil {
			t.Fatalf("our decode of stdlib gzip: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("we decode stdlib gzip differently")
		}
	})
}
