package flate

import (
	"encoding/binary"
	"sync"

	"repro/internal/checksum"
)

// Chunked ("pigz-style") compression: the input is split at fixed
// ParallelChunk boundaries, each chunk deflated independently as a run of
// non-final blocks ending in a sync flush, and the chunks stitched in order
// with one final empty stored block and the container trailer. Because the
// chunk geometry depends only on the input length, the output bytes are a
// pure function of (data, level) — never of how many workers compressed the
// chunks — so golden traces and same-seed replays stay deterministic under
// any parallelism. The cost is the per-chunk window reset: matches cannot
// reach back across a chunk boundary, which costs a fraction of a percent
// of compression factor at the 128 KiB chunk size.
const (
	// ParallelChunk is the independent compression unit.
	ParallelChunk = 128 << 10
	// ParallelThreshold is the input size at which the chunked format
	// engages; smaller inputs use the single-stream encoder.
	ParallelThreshold = 2 * ParallelChunk
)

// deflateChunks compresses each ParallelChunk of data at level on up to
// workers goroutines (workers <= 1 runs inline) and returns the per-chunk
// streams in order.
func deflateChunks(data []byte, level, workers int) ([][]byte, error) {
	n := (len(data) + ParallelChunk - 1) / ParallelChunk
	outs := make([][]byte, n)
	errs := make([]error, n)
	one := func(i int) {
		off := i * ParallelChunk
		end := off + ParallelChunk
		if end > len(data) {
			end = len(data)
		}
		hint := deflateSizeHint(end - off)
		outs[i], errs[i] = AppendDeflateSync(make([]byte, 0, hint), data[off:end], level)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			one(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					one(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// stitch assembles header + chunks + final empty stored block into one
// buffer with room for trail more bytes.
func stitch(header []byte, chunks [][]byte, trail int) []byte {
	size := len(header) + len(FinalStoredBlock) + trail
	for _, c := range chunks {
		size += len(c)
	}
	out := make([]byte, 0, size)
	out = append(out, header...)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return append(out, FinalStoredBlock[:]...)
}

// GzipCompressParallel is GzipCompress over the chunked format, compressing
// on up to workers goroutines. Output bytes depend only on (data, level):
// any workers value — including 1 — produces the identical stream. Inputs
// below ParallelThreshold fall through to GzipCompress unchanged.
func GzipCompressParallel(data []byte, level, workers int) ([]byte, error) {
	if len(data) < ParallelThreshold {
		return GzipCompress(data, level)
	}
	if err := validateLevel(level); err != nil {
		return nil, err
	}
	chunks, err := deflateChunks(data, level, workers)
	if err != nil {
		return nil, err
	}
	var hdr [gzipHdrLen]byte
	hdr[0], hdr[1], hdr[2] = gzipID1, gzipID2, gzipCM
	switch level {
	case 9:
		hdr[8] = gzipXFLBest
	case 1:
		hdr[8] = gzipXFLFast
	}
	hdr[9] = gzipOSUnix
	out := stitch(hdr[:], chunks, gzipTrailLen)
	var trailer [gzipTrailLen]byte
	binary.LittleEndian.PutUint32(trailer[0:4], checksum.CRC32(data))
	binary.LittleEndian.PutUint32(trailer[4:8], uint32(len(data)))
	return append(out, trailer[:]...), nil
}

// ZlibCompressParallel is ZlibCompress over the chunked format; see
// GzipCompressParallel for the determinism contract.
func ZlibCompressParallel(data []byte, level, workers int) ([]byte, error) {
	if len(data) < ParallelThreshold {
		return ZlibCompress(data, level)
	}
	if err := validateLevel(level); err != nil {
		return nil, err
	}
	chunks, err := deflateChunks(data, level, workers)
	if err != nil {
		return nil, err
	}
	cmf := byte(zlibCMFDeflate32K)
	var flevel byte
	switch {
	case level >= 7:
		flevel = 3
	case level >= 5:
		flevel = 2
	case level >= 2:
		flevel = 1
	}
	flg := flevel << 6
	rem := (uint16(cmf)<<8 | uint16(flg)) % 31
	if rem != 0 {
		flg += byte(31 - rem)
	}
	out := stitch([]byte{cmf, flg}, chunks, zlibTrailLen)
	var trailer [zlibTrailLen]byte
	binary.BigEndian.PutUint32(trailer[:], checksum.Adler32(data))
	return append(out, trailer[:]...), nil
}
