package flate

// Regression tests for the fixed-tree fallback. The old encoder promised a
// fallback in a comment but set e.err when dynamic tree construction
// failed, killing the stream; the fallback is now real. Because dynamic
// construction cannot fail on any input the token alphabets can produce,
// the path is exercised by injecting failures through the buildCodeLengths
// package hook.

import (
	"bytes"
	stdflate "compress/flate"
	"errors"
	"io"
	"testing"
)

// withFailingTreeBuilder replaces buildCodeLengths so that the calls whose
// 1-based index is selected by failCall (0 = all calls) fail, restoring the
// real builder when the test finishes.
func withFailingTreeBuilder(t *testing.T, failCall int, body func()) {
	t.Helper()
	orig := buildCodeLengths
	call := 0
	buildCodeLengths = func(lengths []uint8, freqs []int, maxBits int) error {
		call++
		if failCall == 0 || call == failCall {
			return errors.New("injected tree failure")
		}
		return orig(lengths, freqs, maxBits)
	}
	defer func() { buildCodeLengths = orig }()
	body()
}

// fallbackCorpus produces inputs that would normally pick dynamic blocks.
func fallbackCorpus() [][]byte {
	return [][]byte{
		[]byte("the quick brown fox jumps over the lazy dog, repeatedly; " +
			"the quick brown fox jumps over the lazy dog, repeatedly"),
		bytes.Repeat([]byte("abcdefgh01234567"), 8192), // multi-block, match-heavy
		func() []byte {
			b := make([]byte, 64*1024)
			for i := range b {
				b[i] = byte(i * 7)
			}
			return b
		}(),
	}
}

// TestFixedFallbackOnTreeFailure: when every dynamic tree build fails, the
// encoder must degrade to fixed/stored blocks — no error — and the output
// must still decode byte-for-byte in the standard library and our inflate.
func TestFixedFallbackOnTreeFailure(t *testing.T) {
	// failCall selects which buildCodeLengths invocation dies: 0 fails all
	// of them, 1 the literal tree, 2 the distance tree, 3 the CL tree —
	// covering each downgrade site in flushBlock and buildDynamicHeader.
	for _, failCall := range []int{0, 1, 2, 3} {
		for i, data := range fallbackCorpus() {
			var comp []byte
			var err error
			withFailingTreeBuilder(t, failCall, func() {
				comp, err = CompressBytes(data, 9)
			})
			if err != nil {
				t.Fatalf("failCall=%d corpus[%d]: fallback did not engage: %v", failCall, i, err)
			}
			got, err := io.ReadAll(stdflate.NewReader(bytes.NewReader(comp)))
			if err != nil {
				t.Fatalf("failCall=%d corpus[%d]: stdlib rejects fallback stream: %v", failCall, i, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("failCall=%d corpus[%d]: fallback stream decodes differently", failCall, i)
			}
			got, err = DecompressBytes(comp)
			if err != nil {
				t.Fatalf("failCall=%d corpus[%d]: our inflate rejects fallback stream: %v", failCall, i, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("failCall=%d corpus[%d]: our inflate decodes fallback differently", failCall, i)
			}
		}
	}
}

// TestFixedFallbackNeverBeatsDynamic: with the real tree builder the
// sentinel cost must keep dynamic blocks winning on compressible text, so
// the fallback machinery cannot regress normal output.
func TestFixedFallbackNeverBeatsDynamic(t *testing.T) {
	data := bytes.Repeat([]byte("selective compression saves energy "), 2048)
	comp, err := CompressBytes(data, 9)
	if err != nil {
		t.Fatal(err)
	}
	var fixed []byte
	withFailingTreeBuilder(t, 0, func() {
		fixed, err = CompressBytes(data, 9)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(fixed) {
		t.Fatalf("dynamic blocks (%d bytes) should beat forced-fixed (%d bytes) on text", len(comp), len(fixed))
	}
}
