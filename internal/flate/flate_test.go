package flate

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"compress/zlib"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// corpusSamples exercises the classes of data the paper's Table 2 covers.
func corpusSamples() map[string][]byte {
	rng := rand.New(rand.NewSource(11))
	random := make([]byte, 60000)
	rng.Read(random)
	runs := bytes.Repeat([]byte{'x'}, 70000)
	text := []byte(strings.Repeat("The energy model estimates compressed downloading cost. ", 1500))
	var structured []byte
	for i := 0; i < 3000; i++ {
		structured = append(structured, []byte("<item id=\"0\"><name>value</name></item>\n")...)
	}
	allBytes := make([]byte, 256*20)
	for i := range allBytes {
		allBytes[i] = byte(i)
	}
	return map[string][]byte{
		"empty":      nil,
		"one":        {42},
		"short":      []byte("abc"),
		"text":       text,
		"structured": structured,
		"random":     random,
		"runs":       runs,
		"allBytes":   allBytes,
	}
}

func TestDeflateInflateRoundTrip(t *testing.T) {
	for name, data := range corpusSamples() {
		for _, level := range []int{1, 6, 9} {
			comp, err := CompressBytes(data, level)
			if err != nil {
				t.Fatalf("%s level %d: %v", name, level, err)
			}
			got, err := DecompressBytes(comp)
			if err != nil {
				t.Fatalf("%s level %d: inflate: %v", name, level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s level %d: round trip mismatch", name, level)
			}
		}
	}
}

func TestDeflateCompressesText(t *testing.T) {
	data := corpusSamples()["text"]
	comp, err := CompressBytes(data, 9)
	if err != nil {
		t.Fatal(err)
	}
	if f := float64(len(data)) / float64(len(comp)); f < 5 {
		t.Errorf("text compression factor %.2f, want > 5", f)
	}
}

func TestDeflateRandomNearStored(t *testing.T) {
	data := corpusSamples()["random"]
	comp, err := CompressBytes(data, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Stored-block fallback bounds the expansion to ~5 bytes per 64 KB.
	if len(comp) > len(data)+len(data)/200+64 {
		t.Errorf("random data expanded: %d -> %d", len(data), len(comp))
	}
}

// Interop: the stdlib must inflate our output, and we must inflate stdlib's.
func TestInteropStdlibInflatesOurs(t *testing.T) {
	for name, data := range corpusSamples() {
		comp, err := CompressBytes(data, 9)
		if err != nil {
			t.Fatal(err)
		}
		r := flate.NewReader(bytes.NewReader(comp))
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("%s: stdlib inflate of our stream: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: stdlib decoded different bytes", name)
		}
	}
}

func TestInteropWeInflateStdlib(t *testing.T) {
	for name, data := range corpusSamples() {
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, 9)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := DecompressBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("%s: our inflate of stdlib stream: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: we decoded different bytes", name)
		}
	}
}

func TestGzipRoundTrip(t *testing.T) {
	for name, data := range corpusSamples() {
		comp, err := GzipCompress(data, 9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := GzipDecompress(comp, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: gzip round trip mismatch", name)
		}
	}
}

func TestGzipInteropStdlib(t *testing.T) {
	data := corpusSamples()["structured"]
	comp, err := GzipCompress(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatalf("stdlib gzip reader rejected our stream: %v", err)
	}
	got, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stdlib gzip decoded different bytes")
	}

	// And the reverse.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	got2, err := GzipDecompress(buf.Bytes(), 0)
	if err != nil {
		t.Fatalf("we rejected stdlib gzip stream: %v", err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatal("we decoded stdlib gzip stream differently")
	}
}

func TestZlibRoundTripAndInterop(t *testing.T) {
	data := corpusSamples()["text"]
	comp, err := ZlibCompress(data, 9)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ZlibDecompress(comp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("zlib round trip mismatch")
	}
	zr, err := zlib.NewReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatalf("stdlib zlib reader rejected our stream: %v", err)
	}
	got2, err := io.ReadAll(zr)
	if err != nil || !bytes.Equal(got2, data) {
		t.Fatalf("stdlib zlib decode: %v", err)
	}
}

func TestGzipDetectsCorruption(t *testing.T) {
	data := corpusSamples()["text"]
	comp, err := GzipCompress(data, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: either the inflate fails or the CRC must catch it.
	bad := append([]byte{}, comp...)
	bad[len(bad)/2] ^= 0x40
	if _, err := GzipDecompress(bad, 0); err == nil {
		t.Fatal("corrupted gzip stream decoded without error")
	}
	// Truncate.
	if _, err := GzipDecompress(comp[:len(comp)/2], 0); err == nil {
		t.Fatal("truncated gzip stream decoded without error")
	}
	// Bad magic.
	bad2 := append([]byte{}, comp...)
	bad2[0] = 0
	if _, err := GzipDecompress(bad2, 0); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestInflateMaxSizeGuard(t *testing.T) {
	data := bytes.Repeat([]byte{'b'}, 100000)
	comp, err := CompressBytes(data, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Inflate(nil, bytesReader(comp), 1000); err == nil {
		t.Fatal("expected bomb guard to trip")
	}
	out, err := Inflate(nil, bytesReader(comp), len(data))
	if err != nil {
		t.Fatalf("exact-size limit should pass: %v", err)
	}
	if len(out) != len(data) {
		t.Fatalf("got %d bytes", len(out))
	}
}

func TestLevelValidation(t *testing.T) {
	for _, bad := range []int{0, 10, -1} {
		if _, err := GzipCompress([]byte("x"), bad); err == nil {
			t.Errorf("GzipCompress level %d accepted", bad)
		}
		if _, err := ZlibCompress([]byte("x"), bad); err == nil {
			t.Errorf("ZlibCompress level %d accepted", bad)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20000)
		data := make([]byte, n)
		alpha := 1 + rng.Intn(255)
		for i := range data {
			data[i] = byte(rng.Intn(alpha))
		}
		level := 1 + rng.Intn(9)
		comp, err := GzipCompress(data, level)
		if err != nil {
			return false
		}
		got, err := GzipDecompress(comp, 0)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestInflateRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	reject := 0
	for i := 0; i < 50; i++ {
		junk := make([]byte, 200+rng.Intn(500))
		rng.Read(junk)
		if _, err := Inflate(nil, bytesReader(junk), 1<<20); err != nil {
			reject++
		}
	}
	// Random bytes occasionally parse as tiny valid streams; most must fail.
	if reject < 40 {
		t.Errorf("only %d/50 garbage streams rejected", reject)
	}
}

func TestMultiBlockBoundary(t *testing.T) {
	// Force several blocks by exceeding maxTokensPerBlock with literals.
	rng := rand.New(rand.NewSource(17))
	data := make([]byte, 3*maxTokensPerBlock)
	rng.Read(data)
	comp, err := CompressBytes(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressBytes(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-block round trip mismatch")
	}
}

func BenchmarkDeflateLevel9Text(b *testing.B) {
	data := []byte(strings.Repeat("benchmark corpus for deflate measurements over wireless links\n", 2000))
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := CompressBytes(data, 9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInflateText(b *testing.B) {
	data := []byte(strings.Repeat("benchmark corpus for deflate measurements over wireless links\n", 2000))
	comp, err := CompressBytes(data, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecompressBytes(comp); err != nil {
			b.Fatal(err)
		}
	}
}
