// Package flate implements the DEFLATE compressed format (RFC 1951) and its
// gzip (RFC 1952) and zlib (RFC 1950) containers, built on the lz77 matcher
// and the huffman coder. It is the from-scratch equivalent of the gzip 1.2.4
// / zlib 1.1.3 tools measured by the paper.
package flate

import (
	"fmt"
	"io"

	"repro/internal/bitio"
	"repro/internal/huffman"
	"repro/internal/lz77"
)

// maxTokensPerBlock bounds the token buffer per DEFLATE block, matching
// zlib's 16K-symbol block segmentation: "a block is terminated when the
// compression algorithm determines that it is better to start a new block".
const maxTokensPerBlock = 16384

// maxStoredBlock is the maximum payload of a stored (BTYPE=00) block.
const maxStoredBlock = 65535

// Deflate compresses data to w as a complete DEFLATE stream at the given
// level (1-9). It returns the number of compressed bytes written.
func Deflate(w io.Writer, data []byte, level int) (int, error) {
	m, err := lz77.NewMatcher(level)
	if err != nil {
		return 0, err
	}
	cw := &countWriter{w: w}
	bw := bitio.NewLSBWriter(cw)
	enc := &blockEncoder{bw: bw, data: data}

	m.Tokenize(data, func(t lz77.Token) {
		enc.tokens = append(enc.tokens, t)
		enc.inputEnd += t.Advance()
		if len(enc.tokens) >= maxTokensPerBlock {
			enc.flushBlock(false)
		}
	})
	enc.flushBlock(true)
	if enc.err != nil {
		return cw.n, enc.err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countWriter struct {
	w io.Writer
	n int
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += n
	return n, err
}

// blockEncoder accumulates tokens and emits DEFLATE blocks, choosing
// stored / fixed / dynamic per block by exact cost comparison.
type blockEncoder struct {
	bw         *bitio.LSBWriter
	data       []byte
	tokens     []lz77.Token
	inputStart int // data offset covered by the pending tokens
	inputEnd   int
	err        error
}

func (e *blockEncoder) flushBlock(final bool) {
	if e.err != nil {
		return
	}
	if len(e.tokens) == 0 && !final {
		return
	}

	litFreq := make([]int, maxNumLit)
	distFreq := make([]int, maxNumDist)
	extraBits := 0
	for _, t := range e.tokens {
		if t.IsLiteral() {
			litFreq[t.Lit]++
			continue
		}
		le := lengthCodes[t.Len]
		litFreq[le.code]++
		extraBits += int(le.extra)
		dc := distCode(int(t.Dist))
		distFreq[dc]++
		extraBits += int(distTable[dc].extra)
	}
	litFreq[endBlockMarker]++

	litLens, err := huffman.BuildLengths(litFreq, maxCodeBits)
	if err != nil {
		e.err = err
		return
	}
	distLens, err := huffman.BuildLengths(distFreq, maxCodeBits)
	if err != nil {
		e.err = err
		return
	}
	// DEFLATE requires at least one distance code length even if no
	// matches occurred; give code 0 a dummy 1-bit code.
	hasDist := false
	for _, l := range distLens {
		if l > 0 {
			hasDist = true
			break
		}
	}
	if !hasDist {
		distLens[0] = 1
	}

	header, clLens, clSymbols := e.buildDynamicHeader(litLens, distLens)

	dynCost := header
	for s, f := range litFreq {
		dynCost += f * int(litLens[s])
	}
	for s, f := range distFreq {
		dynCost += f * int(distLens[s])
	}
	dynCost += extraBits

	fixedLit := fixedLitLengths()
	fixedDist := fixedDistLengths()
	fixedCost := 0
	for s, f := range litFreq {
		fixedCost += f * int(fixedLit[s])
	}
	for s, f := range distFreq {
		fixedCost += f * int(fixedDist[s])
	}
	fixedCost += extraBits

	inputLen := e.inputEnd - e.inputStart
	storedCost := 1 << 62
	if inputLen <= maxStoredBlock {
		// 3 header bits + up-to-7 alignment + 32 bits LEN/NLEN + payload.
		storedCost = 3 + 7 + 32 + 8*inputLen
	}

	switch {
	case storedCost <= dynCost+3 && storedCost <= fixedCost+3:
		e.writeStored(final)
	case fixedCost <= dynCost:
		e.writeHuffman(final, 1, fixedLit, fixedDist, nil, nil, 0)
	default:
		e.writeHuffman(final, 2, litLens, distLens, clLens, clSymbols, header)
	}

	e.tokens = e.tokens[:0]
	e.inputStart = e.inputEnd
}

// buildDynamicHeader computes the dynamic header cost in bits along with the
// code-length code and the CL symbol stream (symbol, extra-bit pairs).
type clSym struct {
	sym   int
	extra int
	bits  uint8
}

func (e *blockEncoder) buildDynamicHeader(litLens, distLens []uint8) (bits int, clLens []uint8, syms []clSym) {
	nlit := maxNumLit
	for nlit > 257 && litLens[nlit-1] == 0 {
		nlit--
	}
	ndist := maxNumDist
	for ndist > 1 && distLens[ndist-1] == 0 {
		ndist--
	}
	all := make([]uint8, 0, nlit+ndist)
	all = append(all, litLens[:nlit]...)
	all = append(all, distLens[:ndist]...)

	syms = runLengthEncode(all)
	clFreq := make([]int, numCLSymbols)
	for _, s := range syms {
		clFreq[s.sym]++
	}
	clLens, err := huffman.BuildLengths(clFreq, maxCLCodeBits)
	if err != nil {
		// Cannot happen: 19 symbols always fit 7 bits; fall back to fixed.
		e.err = err
		return 1 << 30, nil, nil
	}
	hclen := numCLSymbols
	for hclen > 4 && clLens[clOrder[hclen-1]] == 0 {
		hclen--
	}
	bits = 5 + 5 + 4 + 3*hclen
	for _, s := range syms {
		bits += int(clLens[s.sym]) + int(s.bits)
	}
	// Stash nlit/ndist/hclen in the first slots of a side channel via
	// closure state: recompute in writeHuffman instead (cheap).
	return bits, clLens, syms
}

// runLengthEncode produces the CL-alphabet symbol stream for a code-length
// vector: 0..15 literal lengths, 16 repeat-previous (3-6, 2 extra bits),
// 17 zero-run (3-10, 3 extra), 18 zero-run (11-138, 7 extra).
func runLengthEncode(lens []uint8) []clSym {
	var out []clSym
	for i := 0; i < len(lens); {
		v := lens[i]
		j := i + 1
		for j < len(lens) && lens[j] == v {
			j++
		}
		run := j - i
		if v == 0 {
			for run >= 11 {
				n := run
				if n > 138 {
					n = 138
				}
				out = append(out, clSym{sym: 18, extra: n - 11, bits: 7})
				run -= n
			}
			if run >= 3 {
				out = append(out, clSym{sym: 17, extra: run - 3, bits: 3})
				run = 0
			}
			for ; run > 0; run-- {
				out = append(out, clSym{sym: 0})
			}
		} else {
			out = append(out, clSym{sym: int(v)})
			run--
			for run >= 3 {
				n := run
				if n > 6 {
					n = 6
				}
				out = append(out, clSym{sym: 16, extra: n - 3, bits: 2})
				run -= n
			}
			for ; run > 0; run-- {
				out = append(out, clSym{sym: int(v)})
			}
		}
		i = j
	}
	return out
}

func (e *blockEncoder) writeStored(final bool) {
	chunk := e.data[e.inputStart:e.inputEnd]
	for first := true; first || len(chunk) > 0; first = false {
		part := chunk
		if len(part) > maxStoredBlock {
			part = part[:maxStoredBlock]
		}
		chunk = chunk[len(part):]
		bfinal := uint64(0)
		if final && len(chunk) == 0 {
			bfinal = 1
		}
		e.bw.WriteBits(bfinal, 1)
		e.bw.WriteBits(0, 2) // BTYPE=00
		e.bw.Align()
		n := uint64(len(part))
		e.bw.WriteBits(n, 16)
		e.bw.WriteBits(^n&0xffff, 16)
		e.bw.WriteBytes(part)
	}
	if e.bw.Err() != nil {
		e.err = e.bw.Err()
	}
}

func (e *blockEncoder) writeHuffman(final bool, btype int, litLens, distLens []uint8, clLens []uint8, clSyms []clSym, _ int) {
	bfinal := uint64(0)
	if final {
		bfinal = 1
	}
	e.bw.WriteBits(bfinal, 1)
	e.bw.WriteBits(uint64(btype), 2)

	if btype == 2 {
		nlit := maxNumLit
		for nlit > 257 && litLens[nlit-1] == 0 {
			nlit--
		}
		ndist := maxNumDist
		for ndist > 1 && distLens[ndist-1] == 0 {
			ndist--
		}
		hclen := numCLSymbols
		for hclen > 4 && clLens[clOrder[hclen-1]] == 0 {
			hclen--
		}
		e.bw.WriteBits(uint64(nlit-257), 5)
		e.bw.WriteBits(uint64(ndist-1), 5)
		e.bw.WriteBits(uint64(hclen-4), 4)
		for i := 0; i < hclen; i++ {
			e.bw.WriteBits(uint64(clLens[clOrder[i]]), 3)
		}
		clCodes, err := huffman.CanonicalCodes(clLens)
		if err != nil {
			e.err = err
			return
		}
		for _, s := range clSyms {
			l := clLens[s.sym]
			e.bw.WriteBits(uint64(huffman.Reverse(clCodes[s.sym], l)), uint(l))
			if s.bits > 0 {
				e.bw.WriteBits(uint64(s.extra), uint(s.bits))
			}
		}
	}

	litCodes, err := huffman.CanonicalCodes(litLens)
	if err != nil {
		e.err = err
		return
	}
	distCodes, err := huffman.CanonicalCodes(distLens)
	if err != nil {
		e.err = err
		return
	}
	emitSym := func(codes []uint32, lens []uint8, s int) {
		e.bw.WriteBits(uint64(huffman.Reverse(codes[s], lens[s])), uint(lens[s]))
	}
	for _, t := range e.tokens {
		if t.IsLiteral() {
			emitSym(litCodes, litLens, int(t.Lit))
			continue
		}
		le := lengthCodes[t.Len]
		emitSym(litCodes, litLens, int(le.code))
		if le.extra > 0 {
			e.bw.WriteBits(uint64(int(t.Len)-int(le.base)), uint(le.extra))
		}
		dc := distCode(int(t.Dist))
		emitSym(distCodes, distLens, dc)
		de := distTable[dc]
		if de.extra > 0 {
			e.bw.WriteBits(uint64(int(t.Dist)-int(de.base)), uint(de.extra))
		}
	}
	emitSym(litCodes, litLens, endBlockMarker)
	if e.bw.Err() != nil {
		e.err = e.bw.Err()
	}
}

// CompressBytes is a convenience wrapper returning the DEFLATE stream for
// data at the given level.
func CompressBytes(data []byte, level int) ([]byte, error) {
	var buf sliceWriter
	if _, err := Deflate(&buf, data, level); err != nil {
		return nil, err
	}
	return buf.b, nil
}

type sliceWriter struct{ b []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

var _ io.Writer = (*sliceWriter)(nil)

// validateLevel reports an error for levels outside 1..9.
func validateLevel(level int) error {
	if level < 1 || level > 9 {
		return fmt.Errorf("flate: level %d out of range 1..9", level)
	}
	return nil
}
