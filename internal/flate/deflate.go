// Package flate implements the DEFLATE compressed format (RFC 1951) and its
// gzip (RFC 1952) and zlib (RFC 1950) containers, built on the lz77 matcher
// and the huffman coder. It is the from-scratch equivalent of the gzip 1.2.4
// / zlib 1.1.3 tools measured by the paper.
package flate

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/bitio"
	"repro/internal/huffman"
	"repro/internal/lz77"
)

// maxTokensPerBlock bounds the token buffer per DEFLATE block, matching
// zlib's 16K-symbol block segmentation: "a block is terminated when the
// compression algorithm determines that it is better to start a new block".
const maxTokensPerBlock = 16384

// maxStoredBlock is the maximum payload of a stored (BTYPE=00) block.
const maxStoredBlock = 65535

// Deflate compresses data to w as a complete DEFLATE stream at the given
// level (1-9). It returns the number of compressed bytes written.
func Deflate(w io.Writer, data []byte, level int) (int, error) {
	m, err := lz77.GetMatcher(level)
	if err != nil {
		return 0, err
	}
	defer lz77.PutMatcher(m)
	cw := countWriter{w: w}
	bw := getLSBWriter(&cw)
	defer putLSBWriter(bw)
	enc := getEncoder(bw, data)
	defer putEncoder(enc)

	m.Tokenize(data, enc.appendToken)
	enc.flushBlock(true)
	if enc.err != nil {
		return cw.n, enc.err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// AppendDeflateSync compresses data at the given level as a run of
// non-final DEFLATE blocks terminated by an empty non-final stored block (a
// "sync flush"), leaving the stream byte-aligned, and appends the bytes to
// dst. Chunks produced this way concatenate into one valid DEFLATE stream
// once a final block (FinalStoredBlock) ends it; this is the pigz-style
// building block the parallel compression plane stitches together.
func AppendDeflateSync(dst []byte, data []byte, level int) ([]byte, error) {
	m, err := lz77.GetMatcher(level)
	if err != nil {
		return nil, err
	}
	defer lz77.PutMatcher(m)
	sw := sliceWriter{b: dst}
	bw := getLSBWriter(&sw)
	defer putLSBWriter(bw)
	enc := getEncoder(bw, data)
	defer putEncoder(enc)

	m.Tokenize(data, enc.appendToken)
	enc.flushBlock(false)
	// Sync flush: empty non-final stored block, which ends byte-aligned.
	bw.WriteBits(0, 3) // BFINAL=0, BTYPE=00
	bw.Align()
	bw.WriteBits(0, 16)
	bw.WriteBits(0xffff, 16)
	if enc.err != nil {
		return nil, enc.err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return sw.b, nil
}

// FinalStoredBlock is the byte-aligned empty final DEFLATE block (BFINAL=1,
// BTYPE=00, LEN=0) that terminates a stream assembled from AppendDeflateSync
// chunks.
var FinalStoredBlock = [5]byte{0x01, 0x00, 0x00, 0xff, 0xff}

type countWriter struct {
	w io.Writer
	n int
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += n
	return n, err
}

// lsbPool recycles bit writers (and their 4 KiB byte buffers) across calls.
var lsbPool = sync.Pool{New: func() any { return bitio.NewLSBWriter(nil) }}

func getLSBWriter(w io.Writer) *bitio.LSBWriter {
	bw := lsbPool.Get().(*bitio.LSBWriter)
	bw.Reset(w)
	return bw
}

func putLSBWriter(bw *bitio.LSBWriter) { lsbPool.Put(bw) }

// blockEncoder accumulates tokens and emits DEFLATE blocks, choosing
// stored / fixed / dynamic per block by exact cost comparison. All working
// state — token buffer, frequency and length arrays, packed code tables —
// is embedded so a pooled encoder runs the steady state without allocating.
type blockEncoder struct {
	bw         *bitio.LSBWriter
	data       []byte
	tokens     []lz77.Token
	inputStart int // data offset covered by the pending tokens
	inputEnd   int
	err        error

	litFreq  [maxNumLit]int
	distFreq [maxNumDist]int
	litLens  [maxNumLit]uint8
	distLens [maxNumDist]uint8
	clFreq   [numCLSymbols]int
	clLens   [numCLSymbols]uint8

	codes   [maxNumLit]uint32 // canonical-code scratch, reused per alphabet
	litEnc  [maxNumLit]uint32 // packed reversed codes (dynamic blocks)
	distEnc [maxNumDist]uint32
	clEnc   [numCLSymbols]uint32

	allLens [maxNumLit + maxNumDist]uint8 // lit+dist lengths for the CL RLE
	clSyms  []clSym
	nlit    int
	ndist   int
	hclen   int
}

var encoderPool = sync.Pool{New: func() any {
	return &blockEncoder{tokens: make([]lz77.Token, 0, maxTokensPerBlock)}
}}

// getEncoder returns a pooled encoder bound to bw and data. Pair with
// putEncoder.
func getEncoder(bw *bitio.LSBWriter, data []byte) *blockEncoder {
	e := encoderPool.Get().(*blockEncoder)
	e.reset(bw, data)
	return e
}

func putEncoder(e *blockEncoder) {
	e.bw = nil
	e.data = nil
	encoderPool.Put(e)
}

// reset rebinds the encoder to a new output stream and input buffer. The
// token buffer and code tables are retained; per-block state is cleared by
// flushBlock itself.
func (e *blockEncoder) reset(bw *bitio.LSBWriter, data []byte) {
	e.bw = bw
	e.data = data
	e.tokens = e.tokens[:0]
	e.inputStart = 0
	e.inputEnd = 0
	e.err = nil
}

// appendToken is the Tokenize sink: it accumulates tokens and flushes a
// non-final block whenever the zlib block budget fills.
func (e *blockEncoder) appendToken(t lz77.Token) {
	e.tokens = append(e.tokens, t)
	e.inputEnd += t.Advance()
	if len(e.tokens) >= maxTokensPerBlock {
		e.flushBlock(false)
	}
}

// buildCodeLengths builds length-limited Huffman code lengths; a package
// variable so tests can inject failures and exercise the fixed-tree
// fallback below.
var buildCodeLengths = huffman.BuildLengthsInto

func (e *blockEncoder) flushBlock(final bool) {
	if e.err != nil {
		return
	}
	if len(e.tokens) == 0 && !final {
		return
	}

	litFreq := e.litFreq[:]
	distFreq := e.distFreq[:]
	clear(litFreq)
	clear(distFreq)
	extraBits := 0
	for _, t := range e.tokens {
		if t.IsLiteral() {
			litFreq[t.Lit]++
			continue
		}
		le := lengthCodes[t.Len]
		litFreq[le.code]++
		extraBits += int(le.extra)
		dc := distCode(int(t.Dist))
		distFreq[dc]++
		extraBits += int(distTable[dc].extra)
	}
	litFreq[endBlockMarker]++

	// Dynamic-tree construction can fail only on inputs the DEFLATE
	// alphabets cannot produce, but the format always offers the fixed
	// trees — so any failure here downgrades the block instead of killing
	// the stream.
	dynOK := true
	if err := buildCodeLengths(e.litLens[:], litFreq, maxCodeBits); err != nil {
		dynOK = false
	}
	if dynOK {
		if err := buildCodeLengths(e.distLens[:], distFreq, maxCodeBits); err != nil {
			dynOK = false
		}
	}
	header := 0
	if dynOK {
		// DEFLATE requires at least one distance code length even if no
		// matches occurred; give code 0 a dummy 1-bit code.
		hasDist := false
		for _, l := range e.distLens {
			if l > 0 {
				hasDist = true
				break
			}
		}
		if !hasDist {
			e.distLens[0] = 1
		}
		header, dynOK = e.buildDynamicHeader()
	}

	// Sentinel cost for an unavailable dynamic block: large enough that
	// fixed (or a small stored block) always wins, small enough that the
	// stored-vs-dynamic comparison below stays meaningful.
	dynCost := 1 << 30
	if dynOK {
		dynCost = header + extraBits
		for s, f := range litFreq {
			dynCost += f * int(e.litLens[s])
		}
		for s, f := range distFreq {
			dynCost += f * int(e.distLens[s])
		}
	}

	fixedCost := extraBits
	for s, f := range litFreq {
		fixedCost += f * int(fixedLitEnc[s]>>packedLenShift)
	}
	for s, f := range distFreq {
		fixedCost += f * int(fixedDistEnc[s]>>packedLenShift)
	}

	inputLen := e.inputEnd - e.inputStart
	storedCost := 1 << 62
	if inputLen <= maxStoredBlock {
		// 3 header bits + up-to-7 alignment + 32 bits LEN/NLEN + payload.
		storedCost = 3 + 7 + 32 + 8*inputLen
	}

	switch {
	case storedCost <= dynCost+3 && storedCost <= fixedCost+3:
		e.writeStored(final)
	case fixedCost <= dynCost:
		e.writeHuffman(final, 1, fixedLitEnc[:], fixedDistEnc[:])
	default:
		if err := packEnc(e.litEnc[:], e.codes[:], e.litLens[:]); err != nil {
			e.err = err
			return
		}
		if err := packEnc(e.distEnc[:], e.codes[:], e.distLens[:]); err != nil {
			e.err = err
			return
		}
		e.writeHuffman(final, 2, e.litEnc[:], e.distEnc[:])
	}

	e.tokens = e.tokens[:0]
	e.inputStart = e.inputEnd
}

// clSym is one symbol of the code-length (CL) alphabet stream: the symbol,
// its extra-bit payload and the extra-bit count.
type clSym struct {
	sym   int
	extra int
	bits  uint8
}

// buildDynamicHeader computes the dynamic header cost in bits from
// e.litLens/e.distLens, leaving the CL code, symbol stream and the
// nlit/ndist/hclen counts on the encoder for writeHuffman. ok=false means
// the dynamic header could not be built and the caller must fall back to
// the fixed trees (the sentinel-cost path); the stream itself stays valid.
func (e *blockEncoder) buildDynamicHeader() (bits int, ok bool) {
	nlit := maxNumLit
	for nlit > 257 && e.litLens[nlit-1] == 0 {
		nlit--
	}
	ndist := maxNumDist
	for ndist > 1 && e.distLens[ndist-1] == 0 {
		ndist--
	}
	all := append(e.allLens[:0], e.litLens[:nlit]...)
	all = append(all, e.distLens[:ndist]...)

	e.clSyms = runLengthEncode(e.clSyms[:0], all)
	clFreq := e.clFreq[:]
	clear(clFreq)
	for _, s := range e.clSyms {
		clFreq[s.sym]++
	}
	if err := buildCodeLengths(e.clLens[:], clFreq, maxCLCodeBits); err != nil {
		// Cannot happen (19 symbols always fit 7 bits), but the format
		// guarantees the fixed trees: report dynamic as unavailable
		// instead of erroring the stream.
		return 0, false
	}
	hclen := numCLSymbols
	for hclen > 4 && e.clLens[clOrder[hclen-1]] == 0 {
		hclen--
	}
	e.nlit, e.ndist, e.hclen = nlit, ndist, hclen
	bits = 5 + 5 + 4 + 3*hclen
	for _, s := range e.clSyms {
		bits += int(e.clLens[s.sym]) + int(s.bits)
	}
	return bits, true
}

// runLengthEncode appends the CL-alphabet symbol stream for a code-length
// vector to dst: 0..15 literal lengths, 16 repeat-previous (3-6, 2 extra
// bits), 17 zero-run (3-10, 3 extra), 18 zero-run (11-138, 7 extra).
func runLengthEncode(dst []clSym, lens []uint8) []clSym {
	out := dst
	for i := 0; i < len(lens); {
		v := lens[i]
		j := i + 1
		for j < len(lens) && lens[j] == v {
			j++
		}
		run := j - i
		if v == 0 {
			for run >= 11 {
				n := run
				if n > 138 {
					n = 138
				}
				out = append(out, clSym{sym: 18, extra: n - 11, bits: 7})
				run -= n
			}
			if run >= 3 {
				out = append(out, clSym{sym: 17, extra: run - 3, bits: 3})
				run = 0
			}
			for ; run > 0; run-- {
				out = append(out, clSym{sym: 0})
			}
		} else {
			out = append(out, clSym{sym: int(v)})
			run--
			for run >= 3 {
				n := run
				if n > 6 {
					n = 6
				}
				out = append(out, clSym{sym: 16, extra: n - 3, bits: 2})
				run -= n
			}
			for ; run > 0; run-- {
				out = append(out, clSym{sym: int(v)})
			}
		}
		i = j
	}
	return out
}

func (e *blockEncoder) writeStored(final bool) {
	chunk := e.data[e.inputStart:e.inputEnd]
	for first := true; first || len(chunk) > 0; first = false {
		part := chunk
		if len(part) > maxStoredBlock {
			part = part[:maxStoredBlock]
		}
		chunk = chunk[len(part):]
		bfinal := uint64(0)
		if final && len(chunk) == 0 {
			bfinal = 1
		}
		e.bw.WriteBits(bfinal, 1)
		e.bw.WriteBits(0, 2) // BTYPE=00
		e.bw.Align()
		n := uint64(len(part))
		e.bw.WriteBits(n, 16)
		e.bw.WriteBits(^n&0xffff, 16)
		e.bw.WriteBytes(part)
	}
	if e.bw.Err() != nil {
		e.err = e.bw.Err()
	}
}

// writeHuffman emits the pending tokens as one Huffman block using the
// packed code tables (fixed or dynamic). For btype 2 the dynamic header is
// written from the state buildDynamicHeader left on the encoder. Each
// symbol-plus-extra-bits pair goes out in a single WriteBits call: at most
// 15+5 bits on the lit/len side and 15+13 on the distance side, both well
// under the accumulator limit.
func (e *blockEncoder) writeHuffman(final bool, btype int, litEnc, distEnc []uint32) {
	bfinal := uint64(0)
	if final {
		bfinal = 1
	}
	e.bw.WriteBits(bfinal, 1)
	e.bw.WriteBits(uint64(btype), 2)

	if btype == 2 {
		e.bw.WriteBits(uint64(e.nlit-257), 5)
		e.bw.WriteBits(uint64(e.ndist-1), 5)
		e.bw.WriteBits(uint64(e.hclen-4), 4)
		for i := 0; i < e.hclen; i++ {
			e.bw.WriteBits(uint64(e.clLens[clOrder[i]]), 3)
		}
		if err := packEnc(e.clEnc[:], e.codes[:], e.clLens[:]); err != nil {
			e.err = err
			return
		}
		for _, s := range e.clSyms {
			ec := e.clEnc[s.sym]
			n := uint(ec >> packedLenShift)
			v := uint64(ec & (1<<packedLenShift - 1))
			if s.bits > 0 {
				v |= uint64(s.extra) << n
				n += uint(s.bits)
			}
			e.bw.WriteBits(v, n)
		}
	}

	for _, t := range e.tokens {
		if t.IsLiteral() {
			ec := litEnc[t.Lit]
			e.bw.WriteBits(uint64(ec&(1<<packedLenShift-1)), uint(ec>>packedLenShift))
			continue
		}
		le := lengthCodes[t.Len]
		ec := litEnc[le.code]
		n := uint(ec >> packedLenShift)
		v := uint64(ec&(1<<packedLenShift-1)) | uint64(t.Len-le.base)<<n
		n += uint(le.extra)
		e.bw.WriteBits(v, n)
		dc := distCode(int(t.Dist))
		de := distTable[dc]
		ec = distEnc[dc]
		n = uint(ec >> packedLenShift)
		v = uint64(ec&(1<<packedLenShift-1)) | uint64(t.Dist-de.base)<<n
		n += uint(de.extra)
		e.bw.WriteBits(v, n)
	}
	ec := litEnc[endBlockMarker]
	e.bw.WriteBits(uint64(ec&(1<<packedLenShift-1)), uint(ec>>packedLenShift))
	if e.bw.Err() != nil {
		e.err = e.bw.Err()
	}
}

// CompressBytes is a convenience wrapper returning the DEFLATE stream for
// data at the given level.
func CompressBytes(data []byte, level int) ([]byte, error) {
	buf := sliceWriter{b: make([]byte, 0, deflateSizeHint(len(data)))}
	if _, err := Deflate(&buf, data, level); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// deflateSizeHint estimates output capacity for compressing n input bytes:
// half the input (typical text compresses well past that) plus headroom for
// the incompressible case's stored-block framing on small inputs.
func deflateSizeHint(n int) int {
	return n/2 + 64
}

type sliceWriter struct{ b []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

var _ io.Writer = (*sliceWriter)(nil)

// validateLevel reports an error for levels outside 1..9.
func validateLevel(level int) error {
	if level < 1 || level > 9 {
		return fmt.Errorf("flate: level %d out of range 1..9", level)
	}
	return nil
}
