package device

import (
	"time"

	"repro/internal/sim"
)

// Worker schedules decompression (or other computational) work onto the
// device CPU inside the idle windows the link grants it, implementing the
// paper's user-level interleaving: receiving runs in the kernel interrupt
// handler and preempts the decompression process, so work only advances
// between packet arrivals and after the download completes.
type Worker struct {
	kernel  *sim.Kernel
	dev     *Device
	pending time.Duration
	doneAt  time.Duration // when the current busy segment ends
	busySum time.Duration
}

// NewWorker returns a worker driving dev's CPU state.
func NewWorker(k *sim.Kernel, dev *Device) *Worker {
	return &Worker{kernel: k, dev: dev}
}

// Add queues d seconds of CPU work.
func (w *Worker) Add(d time.Duration) {
	if d > 0 {
		w.pending += d
	}
}

// Pending reports the queued-but-not-yet-executed work.
func (w *Worker) Pending() time.Duration { return w.pending }

// BusyTotal reports the total CPU-busy time scheduled so far.
func (w *Worker) BusyTotal() time.Duration { return w.busySum }

// Window grants the CPU to the worker for d starting now. The worker marks
// the device busy for min(pending, d) and idle for the remainder. Windows
// must not overlap; the link model guarantees this.
func (w *Worker) Window(d time.Duration) {
	if w.pending <= 0 || d <= 0 {
		w.dev.SetCPU(CPUIdle)
		return
	}
	busy := w.pending
	if busy > d {
		busy = d
	}
	w.pending -= busy
	w.busySum += busy
	w.dev.SetCPU(CPUBusy)
	end := w.kernel.Now() + busy
	w.doneAt = end
	w.kernel.At(end, func() {
		// Only drop to idle if no later busy segment superseded this one.
		if w.kernel.Now() >= w.doneAt {
			w.dev.SetCPU(CPUIdle)
		}
	})
}

// Drain runs all remaining work starting now and returns the completion
// time. Used after the download finishes (no more packet interruptions).
func (w *Worker) Drain() time.Duration {
	if w.pending <= 0 {
		w.dev.SetCPU(CPUIdle)
		return w.kernel.Now()
	}
	busy := w.pending
	w.pending = 0
	w.busySum += busy
	w.dev.SetCPU(CPUBusy)
	end := w.kernel.Now() + busy
	w.doneAt = end
	w.kernel.At(end, func() {
		if w.kernel.Now() >= w.doneAt {
			w.dev.SetCPU(CPUIdle)
		}
	})
	return end
}
