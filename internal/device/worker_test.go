package device

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestWorkerWindowPartialConsumption(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, DefaultPowerTable())
	w := NewWorker(k, d)
	w.Add(30 * time.Millisecond)
	if w.Pending() != 30*time.Millisecond {
		t.Fatalf("pending %v", w.Pending())
	}
	// A 10 ms window consumes 10 ms of work.
	w.Window(10 * time.Millisecond)
	k.Run()
	if w.Pending() != 20*time.Millisecond {
		t.Errorf("pending %v after window", w.Pending())
	}
	if w.BusyTotal() != 10*time.Millisecond {
		t.Errorf("busy total %v", w.BusyTotal())
	}
	if d.CPU() != CPUIdle {
		t.Error("CPU not idle after window end")
	}
}

func TestWorkerWindowNoWork(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, DefaultPowerTable())
	d.SetCPU(CPUBusy)
	w := NewWorker(k, d)
	w.Window(time.Millisecond) // no pending work: must drop CPU to idle
	if d.CPU() != CPUIdle {
		t.Error("empty window should idle the CPU")
	}
}

func TestWorkerSequentialWindowsAccumulate(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, DefaultPowerTable())
	w := NewWorker(k, d)
	w.Add(25 * time.Millisecond)
	// Three 10ms windows at 0, 20, 40 ms.
	for i := 0; i < 3; i++ {
		delay := time.Duration(i) * 20 * time.Millisecond
		k.Schedule(delay, func() { w.Window(10 * time.Millisecond) })
	}
	k.Schedule(50*time.Millisecond, func() {}) // extend the horizon
	k.Run()
	if w.Pending() != 0 {
		t.Errorf("pending %v", w.Pending())
	}
	if w.BusyTotal() != 25*time.Millisecond {
		t.Errorf("busy %v", w.BusyTotal())
	}
	// Busy time must appear in the energy trace: 25 ms at 570 mA, the
	// rest idle at 310 mA over the 50 ms horizon.
	busyJ := 5 * 0.570 * 0.025
	idleJ := 5 * 0.310 * 0.025
	got := d.EnergyJ(0, 50*time.Millisecond)
	if diff := got - (busyJ + idleJ); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("energy %.6f, want %.6f", got, busyJ+idleJ)
	}
}

func TestWorkerDrainEmpty(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, DefaultPowerTable())
	w := NewWorker(k, d)
	if end := w.Drain(); end != 0 {
		t.Errorf("empty drain end %v", end)
	}
}

func TestSetNICSendingCurrent(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, DefaultPowerTable())
	d.SetNICSending(true)
	if got := d.CurrentMA(); got != DefaultPowerTable().NICSendOff {
		t.Errorf("send composite %v", got)
	}
	d.SetPowerSave(true)
	if got := d.CurrentMA(); got != DefaultPowerTable().NICSendOn {
		t.Errorf("send composite (PS) %v", got)
	}
	d.SetNICSending(false)
	if got := d.CurrentMA(); got != 110 {
		t.Errorf("after send: %v", got)
	}
}

func TestStateStrings(t *testing.T) {
	if CPUBusy.String() != "busy" || CPUIdle.String() != "idle" {
		t.Error("CPU state strings")
	}
	for s, want := range map[RadioState]string{
		RadioSleep: "sleep", RadioIdle: "idle", RadioRecv: "recv", RadioSend: "send",
	} {
		if s.String() != want {
			t.Errorf("%d: %q", int(s), s.String())
		}
	}
}

func TestScaledForLevel(t *testing.T) {
	base := ProxyCompressCost(codecGzip())
	l9 := base.ScaledForLevel(9)
	if l9.PerInMB != base.PerInMB {
		t.Errorf("level 9 should be unscaled: %v vs %v", l9.PerInMB, base.PerInMB)
	}
	l1 := base.ScaledForLevel(1)
	if !(l1.PerInMB < base.PerInMB*0.5) {
		t.Errorf("level 1 should cost well under half: %v vs %v", l1.PerInMB, base.PerInMB)
	}
	if d := base.ScaledForLevel(0); d.PerInMB != l9.PerInMB {
		t.Error("level 0 should mean the paper setting (9)")
	}
	if d := base.ScaledForLevel(99); d.PerInMB != l9.PerInMB {
		t.Error("out-of-range level should clamp to 9")
	}
	if l1.PerStream != base.PerStream {
		t.Error("per-stream setup is level-independent")
	}
}
