package device

import (
	"math"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTable1Currents(t *testing.T) {
	pt := DefaultPowerTable()
	cases := []struct {
		cpu   CPUState
		radio RadioState
		ps    bool
		want  float64
	}{
		{CPUIdle, RadioSleep, false, 90},
		{CPUBusy, RadioSleep, false, 310},
		{CPUIdle, RadioIdle, false, 310},
		{CPUIdle, RadioIdle, true, 110},
		{CPUBusy, RadioIdle, false, 570},
		{CPUBusy, RadioIdle, true, 340},
		{CPUIdle, RadioRecv, false, 430},
		{CPUIdle, RadioRecv, true, 400},
		{CPUBusy, RadioRecv, false, 620},
		{CPUBusy, RadioRecv, true, 580},
	}
	for _, c := range cases {
		if got := pt.Current(c.cpu, c.radio, c.ps); got != c.want {
			t.Errorf("Current(%v,%v,ps=%v) = %v, want %v", c.cpu, c.radio, c.ps, got, c.want)
		}
	}
}

func TestPowerSaveReducesIdleCurrent(t *testing.T) {
	pt := DefaultPowerTable()
	if !(pt.IdleIdleOn < pt.IdleIdleOff) {
		t.Error("power save must reduce idle current")
	}
	// The paper's observation: switching from idle to PS while busy drops
	// 570 -> 340 mA.
	if pt.BusyIdleOff-pt.BusyIdleOn != 230 {
		t.Errorf("busy idle off-on delta = %v", pt.BusyIdleOff-pt.BusyIdleOn)
	}
}

func TestNICServiceCalibration(t *testing.T) {
	// m = V * I * (1-idleFrac)/rate must equal the paper's 2.486 J/MB at
	// 0.6 MB/s effective rate with 40% idle.
	pt := DefaultPowerTable()
	m := SupplyVoltage * (pt.NICServiceOff / 1000) * (1 - 0.4) / 0.6
	if !almost(m, 2.486, 0.001) {
		t.Errorf("receive energy coefficient m = %.4f J/MB, want 2.486", m)
	}
}

func TestEnergyIntegration(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, DefaultPowerTable())
	// 1 s idle (310 mA), then 1 s busy (570 mA), then 1 s recv service.
	k.Schedule(time.Second, func() { d.SetCPU(CPUBusy) })
	k.Schedule(2*time.Second, func() {
		d.SetCPU(CPUIdle)
		d.SetNICActive(true)
	})
	k.Schedule(3*time.Second, func() { d.SetNICActive(false) })
	k.Run()

	if got := d.EnergyJ(0, time.Second); !almost(got, 5*0.310, 1e-9) {
		t.Errorf("idle second: %v J", got)
	}
	if got := d.EnergyJ(time.Second, 2*time.Second); !almost(got, 5*0.570, 1e-9) {
		t.Errorf("busy second: %v J", got)
	}
	if got := d.EnergyJ(2*time.Second, 3*time.Second); !almost(got, 5*0.4972, 1e-9) {
		t.Errorf("service second: %v J", got)
	}
	total := d.EnergyJ(0, 3*time.Second)
	if !almost(total, 5*(0.310+0.570+0.4972), 1e-9) {
		t.Errorf("total: %v J", total)
	}
}

func TestEnergyPartialWindow(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, DefaultPowerTable())
	k.Schedule(2*time.Second, func() {})
	k.Run()
	half := d.EnergyJ(500*time.Millisecond, 1500*time.Millisecond)
	if !almost(half, 5*0.310*1.0, 1e-9) {
		t.Errorf("partial window: %v", half)
	}
	if d.EnergyJ(time.Second, time.Second) != 0 {
		t.Error("empty window should be 0")
	}
}

func TestCurrentAt(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, DefaultPowerTable())
	k.Schedule(time.Second, func() { d.SetRadio(RadioSleep) })
	k.Schedule(2*time.Second, func() { d.SetRadio(RadioIdle) })
	k.Run()
	if got := d.CurrentAt(500 * time.Millisecond); got != 310 {
		t.Errorf("at 0.5s: %v", got)
	}
	if got := d.CurrentAt(1500 * time.Millisecond); got != 90 {
		t.Errorf("at 1.5s: %v", got)
	}
}

func TestNICActiveOverridesCPU(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, DefaultPowerTable())
	d.SetCPU(CPUBusy)
	d.SetNICActive(true)
	if got := d.CurrentMA(); got != DefaultPowerTable().NICServiceOff {
		t.Errorf("NIC-active current %v", got)
	}
	d.SetNICActive(false)
	if got := d.CurrentMA(); got != 570 {
		t.Errorf("back to busy: %v", got)
	}
}

func TestGzipDecompressCostMatchesPaperFit(t *testing.T) {
	// td = 0.161*s + 0.161*sc + 0.004 for s=1 MB, sc=0.25 MB.
	m := DecompressCost(codec.Gzip)
	got := m.Seconds(250_000, 1_000_000, 1).Seconds()
	want := 0.161*1.0 + 0.161*0.25 + 0.004
	if !almost(got, want, 1e-9) {
		t.Errorf("td = %v, want %v", got, want)
	}
}

func TestBzip2CostsSeveralTimesGzip(t *testing.T) {
	in, out := 300_000, 1_000_000
	g := DecompressCost(codec.Gzip).Seconds(in, out, 1)
	b := DecompressCost(codec.Bzip2).Seconds(in, out, 4)
	if ratio := b.Seconds() / g.Seconds(); ratio < 2.5 {
		t.Errorf("bzip2/gzip decompress ratio %.2f, want > 2.5", ratio)
	}
	c := DecompressCost(codec.Compress).Seconds(in, out, 1)
	if c >= g {
		t.Errorf("LZW decode (%v) should be cheaper than gzip (%v)", c, g)
	}
}

func TestProxyFasterThanHandheld(t *testing.T) {
	for _, s := range codec.Schemes() {
		p := ProxyCompressCost(s).Seconds(1_000_000, 300_000, 1)
		h := HandheldCompressCost(s).Seconds(1_000_000, 300_000, 1)
		if h.Seconds()/p.Seconds() < 5 {
			t.Errorf("%v: handheld should be much slower than proxy", s)
		}
	}
}

func TestProxyGzipOverlapsTransmission(t *testing.T) {
	// The paper: "the compression almost completely overlaps with data
	// transmitting on the proxy server" — compressing 1 MB must take less
	// time than transmitting its compressed form at 0.6 MB/s for typical
	// factors.
	in := 1_000_000
	outMB := 0.4 // factor 2.5
	comp := ProxyCompressCost(codec.Gzip).Seconds(in, int(outMB*1e6), 1)
	tx := time.Duration(outMB / 0.6 * float64(time.Second))
	if comp > tx {
		t.Errorf("gzip proxy compression (%v) exceeds transmission (%v)", comp, tx)
	}
}

func TestTraceCoalescesEqualCurrents(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, DefaultPowerTable())
	k.Schedule(time.Second, func() { d.SetCPU(CPUIdle) }) // no-op change
	k.Run()
	if n := len(d.Trace()); n != 1 {
		t.Errorf("no-op state change grew trace to %d segments", n)
	}
}

func TestBatteryCapacity(t *testing.T) {
	b := IPAQBattery()
	if math.Abs(b.CapacityJ-19980) > 1 {
		t.Errorf("capacity %v J, want ~19980", b.CapacityJ)
	}
	if ExtendedPackBattery().CapacityJ != 2*b.CapacityJ {
		t.Error("extended pack should double capacity")
	}
}

func TestBatteryLifetime(t *testing.T) {
	b := Battery{CapacityJ: 3600}
	if got := b.Lifetime(1.0); got != time.Hour {
		t.Errorf("1 W on 3600 J should last an hour, got %v", got)
	}
	if b.Lifetime(0) != 0 {
		t.Error("zero power should return 0")
	}
}

func TestBatteryOperations(t *testing.T) {
	b := Battery{CapacityJ: 100}
	if got := b.Operations(2.5); got != 40 {
		t.Errorf("got %d operations", got)
	}
	if b.Operations(0) != 0 {
		t.Error("zero-cost operations should return 0")
	}
}

func TestBatteryLifeExtension(t *testing.T) {
	b := IPAQBattery()
	if got := b.LifeExtension(3.5, 0.7); math.Abs(got-5) > 1e-9 {
		t.Errorf("extension %v, want 5", got)
	}
	if b.LifeExtension(0, 1) != 0 || b.LifeExtension(1, 0) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}
