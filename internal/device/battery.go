package device

import "time"

// Battery converts the experiments' joule figures into the quantity the
// paper's title is about: battery life. The paper measures current with
// the batteries disconnected (5 V external supply); a battery is modeled
// by its usable energy content.
type Battery struct {
	// CapacityJ is the usable energy in joules.
	CapacityJ float64
}

// IPAQBattery returns the iPAQ 3650's battery: a 1500 mAh Li-polymer pack
// at 3.7 V nominal ≈ 19,980 J usable.
func IPAQBattery() Battery {
	return Battery{CapacityJ: 1500.0 / 1000 * 3.7 * 3600}
}

// ExtendedPackBattery returns the expansion-pack configuration the paper's
// setup mentions (roughly doubling capacity).
func ExtendedPackBattery() Battery {
	b := IPAQBattery()
	b.CapacityJ *= 2
	return b
}

// Lifetime returns how long the battery lasts at a constant power draw.
func (b Battery) Lifetime(powerW float64) time.Duration {
	if powerW <= 0 {
		return 0
	}
	return time.Duration(b.CapacityJ / powerW * float64(time.Second))
}

// Operations returns how many operations of the given energy cost fit in
// one charge.
func (b Battery) Operations(perOpJ float64) int {
	if perOpJ <= 0 {
		return 0
	}
	return int(b.CapacityJ / perOpJ)
}

// LifeExtension returns the multiplicative battery-life gain of an
// optimisation that reduces per-operation energy from baseJ to newJ.
func (b Battery) LifeExtension(baseJ, newJ float64) float64 {
	if newJ <= 0 || baseJ <= 0 {
		return 0
	}
	return baseJ / newJ
}
