// Package device models the handheld of the paper's testbed — a Compaq
// iPAQ 3650 with a WaveLAN 802.11b card — as a power-state machine whose
// electrical currents are the measurements of the paper's Table 1. Energy
// is the exact integral of supply voltage times state current over the
// simulated timeline; the multimeter package samples the same signal the
// way the paper's HP 3458a did.
package device

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// SupplyVoltage is the external DC supply the paper substituted for the
// batteries.
const SupplyVoltage = 5.0

// CPUState is the processor activity level.
type CPUState int

// CPU states. ServiceNIC is the composite state while the WaveLAN card is
// actively transferring and the CPU is servicing the interface (the paper
// marks these rows '-' in Table 1: the CPU is not idle even when it runs no
// computational task).
const (
	CPUIdle CPUState = iota + 1
	CPUBusy
)

// RadioState is the WaveLAN card state.
type RadioState int

// Radio states of Table 1.
const (
	RadioSleep RadioState = iota + 1
	RadioIdle
	RadioRecv
	RadioSend
)

func (s RadioState) String() string {
	switch s {
	case RadioSleep:
		return "sleep"
	case RadioIdle:
		return "idle"
	case RadioRecv:
		return "recv"
	case RadioSend:
		return "send"
	default:
		return fmt.Sprintf("RadioState(%d)", int(s))
	}
}

func (s CPUState) String() string {
	switch s {
	case CPUIdle:
		return "idle"
	case CPUBusy:
		return "busy"
	default:
		return fmt.Sprintf("CPUState(%d)", int(s))
	}
}

// PowerTable holds device current draw in milliamps per state combination,
// following the paper's Table 1. Where Table 1 reports a range, the gzip
// decompression average (the parenthesised value) or the midpoint is used.
type PowerTable struct {
	// Current[cpu][radio][ps] in mA; indices via the small helpers below.
	IdleSleep   float64
	BusySleep   float64
	IdleIdleOff float64
	IdleIdleOn  float64
	BusyIdleOff float64
	BusyIdleOn  float64
	IdleRecvOff float64
	IdleRecvOn  float64
	BusyRecvOff float64
	BusyRecvOn  float64
	IdleSendOff float64
	IdleSendOn  float64
	BusySendOff float64
	BusySendOn  float64

	// NICServiceOff/On is the composite average current while the device
	// is actively receiving and copying packet data (radio recv + CPU
	// servicing the interface, with short copy bursts). It is calibrated
	// so the per-megabyte receive energy m matches the paper's fitted
	// m = 2.486 J/MB at the measured 0.6 MB/s effective rate with a 40%
	// idle fraction: m = V * I * (1-idleFrac)/rate => I = 497.2 mA.
	NICServiceOff float64
	NICServiceOn  float64

	// NICSendOff/On is the send-side composite (transmit draws a little
	// more than receive on the WaveLAN card; the paper measured only the
	// receive path, so these extend the table symmetrically).
	NICSendOff float64
	NICSendOn  float64
}

// DefaultPowerTable returns Table 1's currents (mA).
func DefaultPowerTable() PowerTable {
	return PowerTable{
		IdleSleep:   90,
		BusySleep:   310, // range 300-440, gzip average 310
		IdleIdleOff: 310,
		IdleIdleOn:  110,
		BusyIdleOff: 570, // range 530-670, gzip average 570
		BusyIdleOn:  340, // range 330-470, gzip average 340
		IdleRecvOff: 430,
		IdleRecvOn:  400,
		BusyRecvOff: 620, // midpoint of 550-690
		BusyRecvOn:  580, // midpoint of 470-690
		IdleSendOff: 450, // send rows modeled symmetric to recv
		IdleSendOn:  420,
		BusySendOff: 640,
		BusySendOn:  600,

		NICServiceOff: 497.2,
		NICServiceOn:  462.5,

		NICSendOff: 510.0,
		NICSendOn:  475.0,
	}
}

// Current returns the draw in mA for a state combination.
func (t PowerTable) Current(cpu CPUState, radio RadioState, ps bool) float64 {
	switch radio {
	case RadioSleep:
		if cpu == CPUBusy {
			return t.BusySleep
		}
		return t.IdleSleep
	case RadioIdle:
		switch {
		case cpu == CPUBusy && ps:
			return t.BusyIdleOn
		case cpu == CPUBusy:
			return t.BusyIdleOff
		case ps:
			return t.IdleIdleOn
		default:
			return t.IdleIdleOff
		}
	case RadioRecv:
		switch {
		case cpu == CPUBusy && ps:
			return t.BusyRecvOn
		case cpu == CPUBusy:
			return t.BusyRecvOff
		case ps:
			return t.IdleRecvOn
		default:
			return t.IdleRecvOff
		}
	case RadioSend:
		switch {
		case cpu == CPUBusy && ps:
			return t.BusySendOn
		case cpu == CPUBusy:
			return t.BusySendOff
		case ps:
			return t.IdleSendOn
		default:
			return t.IdleSendOff
		}
	default:
		return t.IdleIdleOff
	}
}

// Segment is one constant-current interval of the device trace.
type Segment struct {
	Start     time.Duration
	CurrentMA float64
}

// Device is the simulated handheld: a power-state machine on the event
// kernel that records a piecewise-constant current trace.
type Device struct {
	kernel *sim.Kernel
	table  PowerTable

	cpu       CPUState
	radio     RadioState
	powerSave bool
	nicActive bool
	nicSend   bool

	trace []Segment
}

// New returns a device in the idle/idle/no-power-save state.
func New(k *sim.Kernel, table PowerTable) *Device {
	d := &Device{
		kernel: k,
		table:  table,
		cpu:    CPUIdle,
		radio:  RadioIdle,
	}
	d.trace = append(d.trace, Segment{Start: k.Now(), CurrentMA: d.CurrentMA()})
	return d
}

// CurrentMA returns the instantaneous current draw.
func (d *Device) CurrentMA() float64 {
	if d.nicActive {
		switch {
		case d.nicSend && d.powerSave:
			return d.table.NICSendOn
		case d.nicSend:
			return d.table.NICSendOff
		case d.powerSave:
			return d.table.NICServiceOn
		default:
			return d.table.NICServiceOff
		}
	}
	return d.table.Current(d.cpu, d.radio, d.powerSave)
}

func (d *Device) noteChange() {
	i := d.CurrentMA()
	last := &d.trace[len(d.trace)-1]
	if last.Start == d.kernel.Now() {
		last.CurrentMA = i
		return
	}
	if last.CurrentMA == i {
		return
	}
	d.trace = append(d.trace, Segment{Start: d.kernel.Now(), CurrentMA: i})
}

// SetCPU sets the processor state.
func (d *Device) SetCPU(s CPUState) {
	d.cpu = s
	d.noteChange()
}

// SetRadio sets the WaveLAN card state.
func (d *Device) SetRadio(s RadioState) {
	d.radio = s
	d.noteChange()
}

// SetPowerSave enables or disables the card's power-saving mode.
func (d *Device) SetPowerSave(on bool) {
	d.powerSave = on
	d.noteChange()
}

// SetNICActive marks the device as actively transferring packet data; while
// set it draws the calibrated composite service current regardless of CPU
// state (receiving runs in the kernel interrupt handler and preempts
// computation, as the paper describes).
func (d *Device) SetNICActive(on bool) {
	d.nicActive = on
	d.nicSend = false
	d.noteChange()
}

// SetNICSending marks the device as actively transmitting packet data (the
// upload direction), drawing the send-side composite current.
func (d *Device) SetNICSending(on bool) {
	d.nicActive = on
	d.nicSend = on
	d.noteChange()
}

// CPU returns the current processor state.
func (d *Device) CPU() CPUState { return d.cpu }

// PowerSave reports whether power saving is enabled.
func (d *Device) PowerSave() bool { return d.powerSave }

// Trace returns the recorded current trace (a copy).
func (d *Device) Trace() []Segment {
	out := make([]Segment, len(d.trace))
	copy(out, d.trace)
	return out
}

// EnergyJ integrates V*I over [from, to], which must lie within the
// simulated timeline (to may equal the current kernel time).
func (d *Device) EnergyJ(from, to time.Duration) float64 {
	if to > d.kernel.Now() {
		to = d.kernel.Now()
	}
	if from >= to {
		return 0
	}
	var joules float64
	for i := range d.trace {
		segStart := d.trace[i].Start
		segEnd := d.kernel.Now()
		if i+1 < len(d.trace) {
			segEnd = d.trace[i+1].Start
		}
		lo, hi := segStart, segEnd
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			joules += SupplyVoltage * (d.trace[i].CurrentMA / 1000) * hi.Seconds()
			joules -= SupplyVoltage * (d.trace[i].CurrentMA / 1000) * lo.Seconds()
		}
	}
	return joules
}

// CurrentAt returns the traced current at time t.
func (d *Device) CurrentAt(t time.Duration) float64 {
	cur := d.trace[0].CurrentMA
	for _, seg := range d.trace {
		if seg.Start > t {
			break
		}
		cur = seg.CurrentMA
	}
	return cur
}
