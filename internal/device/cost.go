package device

import (
	"time"

	"repro/internal/codec"
)

// CostModel is a linear CPU-time model for a codec operation:
// seconds = PerOutMB*outMB + PerInMB*inMB + PerStream + PerBlock*blocks.
//
// For gzip decompression on the iPAQ the coefficients are the paper's
// Figure 8(a) fit, td = 0.161*s + 0.161*sc + 0.004 (s = raw size, sc =
// compressed size, MB): decompression reads sc and writes s, so PerOutMB
// covers the raw side and PerInMB the compressed side.
type CostModel struct {
	PerOutMB  float64 // seconds per MB of produced output
	PerInMB   float64 // seconds per MB of consumed input
	PerStream float64 // fixed start-up seconds (library init, tables)
	PerBlock  float64 // seconds per processed block
}

// Seconds evaluates the model including the per-stream start-up cost.
func (m CostModel) Seconds(inBytes, outBytes, blocks int) time.Duration {
	return m.MarginalSeconds(inBytes, outBytes, blocks) +
		time.Duration(m.PerStream*float64(time.Second))
}

// MarginalSeconds evaluates the model without the per-stream start-up
// cost, for blocks after the first of a shared stream.
func (m CostModel) MarginalSeconds(inBytes, outBytes, blocks int) time.Duration {
	const mb = 1e6
	s := m.PerOutMB*float64(outBytes)/mb +
		m.PerInMB*float64(inBytes)/mb +
		m.PerBlock*float64(blocks)
	return time.Duration(s * float64(time.Second))
}

// DecompressCost returns the iPAQ (SA-1110 206 MHz) decompression cost
// model for a scheme. gzip/zlib use the paper's measured fit; compress and
// bzip2 are calibrated to the paper's qualitative measurements — LZW decode
// is the cheapest per byte, the BWT inverse pipeline several times more
// expensive than DEFLATE (the property that costs bzip2 its energy
// advantage in Figures 1-2).
func DecompressCost(s codec.Scheme) CostModel {
	switch s {
	case codec.Gzip, codec.Zlib:
		return CostModel{PerOutMB: 0.161, PerInMB: 0.161, PerStream: 0.004}
	case codec.Compress:
		return CostModel{PerOutMB: 0.150, PerInMB: 0.130, PerStream: 0.003}
	case codec.Bzip2:
		return CostModel{PerOutMB: 0.550, PerInMB: 0.350, PerStream: 0.010, PerBlock: 0.002}
	default:
		return CostModel{PerOutMB: 0.161, PerInMB: 0.161, PerStream: 0.004}
	}
}

// ProxyCompressCost returns the proxy-side (P-III 1 GHz) compression cost
// model used by the compression-on-demand experiments (Section 5). The
// desktop is roughly an order of magnitude faster than the handheld;
// compression is several times more expensive than decompression for every
// scheme, with bzip2 the slowest ("it is widely known that bzip2
// compresses slower than gzip and compress, so it can be eliminated").
func ProxyCompressCost(s codec.Scheme) CostModel {
	switch s {
	case codec.Gzip, codec.Zlib:
		// Calibrated so block-pipelined compression keeps up with the
		// link even at the corpus's highest factors (raw consumption
		// 0.6 MB/s x F <= ~10 MB/s), reproducing the paper's observation
		// that "the compression almost completely overlaps with data
		// transmitting on the proxy server".
		return CostModel{PerInMB: 0.100, PerOutMB: 0.020, PerStream: 0.0005}
	case codec.Compress:
		return CostModel{PerInMB: 0.055, PerOutMB: 0.015, PerStream: 0.0005}
	case codec.Bzip2:
		return CostModel{PerInMB: 1.200, PerOutMB: 0.150, PerStream: 0.003, PerBlock: 0.004}
	default:
		return CostModel{PerInMB: 0.100, PerOutMB: 0.020, PerStream: 0.0005}
	}
}

// ScaledForLevel returns the model with the per-byte costs scaled for a
// compression effort level 1-9 (level 0 = the paper's setting = 9): lower
// levels search shorter hash chains and skip lazy matching, costing
// roughly 40%% of level 9's time at level 1.
func (m CostModel) ScaledForLevel(level int) CostModel {
	if level <= 0 {
		level = 9
	}
	if level > 9 {
		level = 9
	}
	f := 0.325 + 0.075*float64(level)
	m.PerOutMB *= f
	m.PerInMB *= f
	return m
}

// HandheldCompressCost returns the iPAQ-side compression cost model, used
// for upload-style what-if experiments. Compression on the SA-1110 is
// roughly the proxy model scaled by the clock and architecture gap.
func HandheldCompressCost(s codec.Scheme) CostModel {
	p := ProxyCompressCost(s)
	const slowdown = 9.0
	return CostModel{
		PerOutMB:  p.PerOutMB * slowdown,
		PerInMB:   p.PerInMB * slowdown,
		PerStream: p.PerStream * slowdown,
		PerBlock:  p.PerBlock * slowdown,
	}
}
