package device

import "repro/internal/codec"

// codecGzip avoids repeating the import dance in table-driven tests.
func codecGzip() codec.Scheme { return codec.Gzip }
