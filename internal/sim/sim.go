// Package sim is a small discrete-event simulation kernel: a virtual clock
// and an ordered event queue. The device, link and meter models run on it,
// which makes every experiment deterministic and independent of host
// wall-clock speed — the substitution for the paper's physical testbed.
package sim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel owns the virtual clock and the pending-event queue. The zero value
// is not usable; construct with NewKernel. A Kernel is single-threaded by
// design: all model code runs inside event callbacks.
type Kernel struct {
	now time.Duration
	pq  eventHeap
	seq uint64
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Schedule enqueues fn to run after delay. Negative delays run "now" (the
// kernel never moves time backwards). Events at equal times run in
// scheduling order.
func (k *Kernel) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	k.seq++
	heap.Push(&k.pq, &event{at: k.now + delay, seq: k.seq, fn: fn})
}

// At enqueues fn at absolute virtual time t (clamped to now).
func (k *Kernel) At(t time.Duration, fn func()) {
	k.Schedule(t-k.now, fn)
}

// Run executes events until the queue drains, returning the final time.
func (k *Kernel) Run() time.Duration {
	for len(k.pq) > 0 {
		e := heap.Pop(&k.pq).(*event)
		k.now = e.at
		e.fn()
	}
	return k.now
}

// RunUntil executes events with time <= t, then advances the clock to t.
func (k *Kernel) RunUntil(t time.Duration) {
	for len(k.pq) > 0 && k.pq[0].at <= t {
		e := heap.Pop(&k.pq).(*event)
		k.now = e.at
		e.fn()
	}
	if t > k.now {
		k.now = t
	}
}

// Step pops and runs the single earliest event, advancing the clock to
// its time. It reports false (and leaves the clock alone) when the queue
// is empty. Concurrent drivers (internal/simnet) advance the kernel one
// event at a time through here, under their own lock.
func (k *Kernel) Step() bool {
	if len(k.pq) == 0 {
		return false
	}
	e := heap.Pop(&k.pq).(*event)
	k.now = e.at
	e.fn()
	return true
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.pq) }
