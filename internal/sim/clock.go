package sim

import "time"

// WallClock abstracts the two wall-clock operations the proxy dataplane
// performs — reading the time (to compute I/O deadlines) and sleeping
// (retry backoff) — so the same unmodified server and client can run
// either on the host clock or on the virtual testbed clock
// (internal/simnet), where sleeps and deadlines advance simulated time
// instead of burning real seconds.
type WallClock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// SystemClock is the host-time WallClock: Now and Sleep delegate to the
// time package. It is the default everywhere a WallClock is optional.
type SystemClock struct{}

// Now returns time.Now().
func (SystemClock) Now() time.Time { return time.Now() }

// Sleep calls time.Sleep.
func (SystemClock) Sleep(d time.Duration) { time.Sleep(d) }
