package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	k.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	k.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	end := k.Run()
	if end != 30*time.Millisecond {
		t.Errorf("final time %v", end)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order %v", order)
		}
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(time.Second, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	var times []time.Duration
	var tick func()
	n := 0
	tick = func() {
		times = append(times, k.Now())
		n++
		if n < 5 {
			k.Schedule(100*time.Millisecond, tick)
		}
	}
	k.Schedule(0, tick)
	k.Run()
	if len(times) != 5 {
		t.Fatalf("got %d ticks", len(times))
	}
	for i, ts := range times {
		if ts != time.Duration(i)*100*time.Millisecond {
			t.Errorf("tick %d at %v", i, ts)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	k := NewKernel()
	k.Schedule(time.Second, func() {
		k.Schedule(-5*time.Second, func() {
			if k.Now() != time.Second {
				t.Errorf("negative delay moved time to %v", k.Now())
			}
		})
	})
	k.Run()
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.Schedule(time.Second, func() { ran++ })
	k.Schedule(3*time.Second, func() { ran++ })
	k.RunUntil(2 * time.Second)
	if ran != 1 {
		t.Errorf("ran %d events, want 1", ran)
	}
	if k.Now() != 2*time.Second {
		t.Errorf("clock at %v", k.Now())
	}
	if k.Pending() != 1 {
		t.Errorf("pending %d", k.Pending())
	}
	k.Run()
	if ran != 2 {
		t.Errorf("ran %d events after Run", ran)
	}
}

func TestAtAbsoluteTime(t *testing.T) {
	k := NewKernel()
	var at time.Duration
	k.At(time.Minute, func() { at = k.Now() })
	k.Run()
	if at != time.Minute {
		t.Errorf("ran at %v", at)
	}
}

func TestQuickRandomSchedulesOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		k := NewKernel()
		n := 200
		delays := make([]time.Duration, n)
		for i := range delays {
			delays[i] = time.Duration(rng.Intn(1000)) * time.Millisecond
		}
		var fired []time.Duration
		for _, d := range delays {
			d := d
			k.Schedule(d, func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		if len(fired) != n {
			t.Fatalf("fired %d", len(fired))
		}
		if !sort.SliceIsSorted(fired, func(a, b int) bool { return fired[a] < fired[b] }) {
			t.Fatal("events fired out of order")
		}
	}
}
