// Package session studies the radio idle-management policies the paper's
// Section 2 discusses: between user requests the WaveLAN card can stay
// idle (timely but power-hungry), use the hardware power-saving mode (the
// paper's choice: low idle draw, 25% throughput penalty), or sleep with a
// predictive wake-up heuristic in the style of Stemm & Katz [11] — whose
// "success rate highly depends on event predictability", quantified here.
package session

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/device"
	"repro/internal/multimeter"
	"repro/internal/sim"
	"repro/internal/wlan"
)

// Policy is a radio idle-management strategy.
type Policy int

// The three policies of Section 2's discussion.
const (
	// AlwaysOn keeps the card idle-receptive between requests.
	AlwaysOn Policy = iota + 1
	// HardwarePS uses the card's power-saving mode: low idle draw, 25%
	// effective-rate penalty while transferring.
	HardwarePS
	// PredictiveSleep puts the card fully to sleep and wakes it with a
	// heuristic prediction of the next request; mispredictions delay the
	// response by the wake-up latency.
	PredictiveSleep
)

func (p Policy) String() string {
	switch p {
	case AlwaysOn:
		return "always-on"
	case HardwarePS:
		return "hardware-PS"
	case PredictiveSleep:
		return "predictive-sleep"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// WakeLatency is the penalty for a mispredicted wake-up (the card must be
// brought out of sleep when the request actually arrives: association +
// beacon wait).
const WakeLatency = 300 * time.Millisecond

// Request is one user fetch in a session.
type Request struct {
	// Gap is the think time before the request (card idle under the
	// policy).
	Gap time.Duration
	// Bytes is the (wire) size of the download.
	Bytes int
}

// Spec describes one session experiment.
type Spec struct {
	Requests []Request
	Policy   Policy
	// PredictAccuracy is the fraction of wake-ups the heuristic gets
	// right (PredictiveSleep only).
	PredictAccuracy float64
	// Seed drives the deterministic misprediction pattern.
	Seed int64
	// Rate is the link configuration (default 11 Mb/s).
	Rate wlan.RateConfig
}

// Result summarises a session run.
type Result struct {
	Policy          Policy
	Requests        int
	TotalSeconds    float64
	EnergyJ         float64
	IdleEnergyJ     float64 // energy burnt between requests
	AvgExtraLatency time.Duration
	Mispredictions  int
}

// Run executes the session on the simulated device.
func Run(spec Spec) (Result, error) {
	if len(spec.Requests) == 0 {
		return Result{}, errors.New("session: no requests")
	}
	if spec.Policy == 0 {
		return Result{}, errors.New("session: policy not set")
	}
	if spec.Rate.EffectiveMBps == 0 {
		spec.Rate = wlan.Rate11Mbps()
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	k := sim.NewKernel()
	dev := device.New(k, device.DefaultPowerTable())
	link, err := wlan.NewLink(k, dev, spec.Rate)
	if err != nil {
		return Result{}, err
	}
	meter := multimeter.New(k, dev, 0)

	res := Result{Policy: spec.Policy, Requests: len(spec.Requests)}
	var idleTime time.Duration
	var extraLatency time.Duration

	// idleState applies the between-request radio state.
	idleState := func() {
		switch spec.Policy {
		case AlwaysOn:
			dev.SetPowerSave(false)
			dev.SetRadio(device.RadioIdle)
		case HardwarePS:
			dev.SetPowerSave(true)
			dev.SetRadio(device.RadioIdle)
		case PredictiveSleep:
			dev.SetPowerSave(false)
			dev.SetRadio(device.RadioSleep)
		}
	}
	transferState := func() {
		// During transfers, hardware PS keeps its rate penalty; the other
		// policies run the radio at full rate.
		dev.SetPowerSave(spec.Policy == HardwarePS)
	}

	var doRequest func(i int)
	doRequest = func(i int) {
		if i >= len(spec.Requests) {
			meter.Stop()
			return
		}
		req := spec.Requests[i]
		idleState()
		idleStart := k.Now()
		k.Schedule(req.Gap, func() {
			idleTime += k.Now() - idleStart
			delay := time.Duration(0)
			if spec.Policy == PredictiveSleep && rng.Float64() >= spec.PredictAccuracy {
				// Mispredicted: the card is asleep when the request
				// arrives and must be woken.
				delay = WakeLatency
				res.Mispredictions++
				extraLatency += WakeLatency
			}
			k.Schedule(delay, func() {
				transferState()
				link.Download(req.Bytes, nil, nil, func() { doRequest(i + 1) })
			})
		})
	}
	meter.Trigger()
	doRequest(0)
	k.Run()

	reading, err := meter.Reading()
	if err != nil {
		return Result{}, err
	}
	res.TotalSeconds = reading.Duration.Seconds()
	res.EnergyJ = reading.ExactJ
	// Idle energy: the policy's idle current over the accumulated gaps.
	pt := device.DefaultPowerTable()
	var idleMA float64
	switch spec.Policy {
	case AlwaysOn:
		idleMA = pt.IdleIdleOff
	case HardwarePS:
		idleMA = pt.IdleIdleOn
	case PredictiveSleep:
		idleMA = pt.IdleSleep
	}
	res.IdleEnergyJ = device.SupplyVoltage * (idleMA / 1000) * idleTime.Seconds()
	if len(spec.Requests) > 0 {
		res.AvgExtraLatency = extraLatency / time.Duration(len(spec.Requests))
	}
	return res, nil
}

// WebSession builds a deterministic browse-like request mix: n requests
// with think times around meanGap and page sizes around meanBytes.
func WebSession(n int, meanGap time.Duration, meanBytes int, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Request, n)
	for i := range out {
		g := time.Duration(float64(meanGap) * (0.3 + 1.4*rng.Float64()))
		b := int(float64(meanBytes) * (0.2 + 1.6*rng.Float64()))
		if b < 1000 {
			b = 1000
		}
		out[i] = Request{Gap: g, Bytes: b}
	}
	return out
}
