package session

import (
	"testing"
	"time"

	"repro/internal/wlan"
)

func webSpec(policy Policy, accuracy float64) Spec {
	return Spec{
		Requests:        WebSession(20, 3*time.Second, 100_000, 7),
		Policy:          policy,
		PredictAccuracy: accuracy,
		Seed:            11,
	}
}

func TestPolicyEnergyOrdering(t *testing.T) {
	on, err := Run(webSpec(AlwaysOn, 0))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Run(webSpec(HardwarePS, 0))
	if err != nil {
		t.Fatal(err)
	}
	sleep, err := Run(webSpec(PredictiveSleep, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	// With long think times, idle dominates: sleep < PS < always-on.
	if !(sleep.EnergyJ < ps.EnergyJ && ps.EnergyJ < on.EnergyJ) {
		t.Errorf("energy ordering broken: sleep %.2f, ps %.2f, on %.2f",
			sleep.EnergyJ, ps.EnergyJ, on.EnergyJ)
	}
	// Idle energy components reflect the idle currents 90 < 110 < 310.
	if !(sleep.IdleEnergyJ < ps.IdleEnergyJ && ps.IdleEnergyJ < on.IdleEnergyJ) {
		t.Errorf("idle energy ordering broken: %.2f %.2f %.2f",
			sleep.IdleEnergyJ, ps.IdleEnergyJ, on.IdleEnergyJ)
	}
}

func TestAlwaysOnZeroLatency(t *testing.T) {
	on, err := Run(webSpec(AlwaysOn, 0))
	if err != nil {
		t.Fatal(err)
	}
	if on.AvgExtraLatency != 0 || on.Mispredictions != 0 {
		t.Errorf("always-on added latency: %+v", on)
	}
}

func TestPredictiveLatencyGrowsWithInaccuracy(t *testing.T) {
	perfect, err := Run(webSpec(PredictiveSleep, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	half, err := Run(webSpec(PredictiveSleep, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	awful, err := Run(webSpec(PredictiveSleep, 0.0))
	if err != nil {
		t.Fatal(err)
	}
	if perfect.Mispredictions != 0 {
		t.Errorf("perfect predictor mispredicted %d times", perfect.Mispredictions)
	}
	if !(half.Mispredictions > 0 && awful.Mispredictions > half.Mispredictions) {
		t.Errorf("mispredictions: half %d, awful %d", half.Mispredictions, awful.Mispredictions)
	}
	if awful.Mispredictions != 20 {
		t.Errorf("0%% accuracy should mispredict every request, got %d", awful.Mispredictions)
	}
	if !(awful.AvgExtraLatency > half.AvgExtraLatency && half.AvgExtraLatency > 0) {
		t.Errorf("latency: half %v, awful %v", half.AvgExtraLatency, awful.AvgExtraLatency)
	}
	if awful.AvgExtraLatency != WakeLatency {
		t.Errorf("avg extra latency %v, want %v", awful.AvgExtraLatency, WakeLatency)
	}
}

func TestHardwarePSTransferPenalty(t *testing.T) {
	// A session dominated by transfer time (tiny gaps, big files): PS must
	// be slower in wall time than always-on.
	reqs := []Request{{Gap: time.Millisecond, Bytes: 2_000_000}}
	on, err := Run(Spec{Requests: reqs, Policy: AlwaysOn})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Run(Spec{Requests: reqs, Policy: HardwarePS})
	if err != nil {
		t.Fatal(err)
	}
	if !(ps.TotalSeconds > on.TotalSeconds*1.2) {
		t.Errorf("PS transfer penalty missing: %.3f vs %.3f s", ps.TotalSeconds, on.TotalSeconds)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := Run(webSpec(PredictiveSleep, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(webSpec(PredictiveSleep, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	if a.EnergyJ != b.EnergyJ || a.Mispredictions != b.Mispredictions {
		t.Errorf("session not deterministic: %+v vs %+v", a, b)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Spec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := Run(Spec{Requests: []Request{{Gap: time.Second, Bytes: 100}}}); err == nil {
		t.Error("missing policy accepted")
	}
}

func TestWebSessionShape(t *testing.T) {
	reqs := WebSession(50, 2*time.Second, 80_000, 3)
	if len(reqs) != 50 {
		t.Fatalf("got %d requests", len(reqs))
	}
	for i, r := range reqs {
		if r.Gap <= 0 || r.Bytes < 1000 {
			t.Fatalf("request %d malformed: %+v", i, r)
		}
	}
	// Deterministic.
	again := WebSession(50, 2*time.Second, 80_000, 3)
	for i := range reqs {
		if reqs[i] != again[i] {
			t.Fatal("WebSession not deterministic")
		}
	}
}

func TestCustomRate(t *testing.T) {
	res, err := Run(Spec{
		Requests: []Request{{Gap: time.Second, Bytes: 180_000}},
		Policy:   AlwaysOn,
		Rate:     wlan.Rate2Mbps(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// 180 kB at 0.18 MB/s ~ 1 s transfer + 1 s gap.
	if res.TotalSeconds < 1.8 || res.TotalSeconds > 2.3 {
		t.Errorf("total %.3f s", res.TotalSeconds)
	}
}
