#!/usr/bin/env sh
# Benchmark-trajectory harness: runs the codec dataplane benchmarks with
# -benchmem and writes BENCH_codec.json (ns/op, MB/s, B/op, allocs/op per
# benchmark, plus the committed pre-optimization baseline from
# scripts/bench_baseline.json). Commit the refreshed snapshot alongside
# performance work so the trajectory of the kernels stays in the history.
#
# Usage: scripts/bench.sh [benchtime]   (default 2s; e.g. 100x for a smoke run)
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
OUT=BENCH_codec.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# The decompression kernels and their enclosing dataplane paths.
go test -run '^$' \
	-bench 'BenchmarkCodecGzipDecompress$|BenchmarkCodecGzipCompress$|BenchmarkCodecCompressDecompress$|BenchmarkCodecBzip2Decompress$|BenchmarkStreamingGzipRoundTrip$|BenchmarkProxyFetchLoopback$' \
	-benchmem -benchtime "$BENCHTIME" . | tee "$RAW"
go test -run '^$' -bench 'BenchmarkDecodeWalker$|BenchmarkDecodeTable$' \
	-benchmem -benchtime "$BENCHTIME" ./internal/huffman | tee -a "$RAW"

{
	printf '{\n'
	printf '  "benchtime": "%s",\n' "$BENCHTIME"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "cpu": "%s",\n' "$(sed -n 's/^cpu: //p' "$RAW" | head -n 1)"
	printf '  "baseline": '
	if [ -f scripts/bench_baseline.json ]; then
		cat scripts/bench_baseline.json
	else
		printf 'null'
	fi
	printf ',\n  "results": [\n'
	awk '
		/^Benchmark/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			ns = ""; mbps = ""; bop = ""; aop = ""
			for (i = 3; i <= NF; i++) {
				if ($i == "ns/op") ns = $(i-1)
				if ($i == "MB/s") mbps = $(i-1)
				if ($i == "B/op") bop = $(i-1)
				if ($i == "allocs/op") aop = $(i-1)
			}
			if (!first) first = 1; else printf ",\n"
			printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, $2, ns
			if (mbps != "") printf ", \"mb_per_s\": %s", mbps
			if (bop != "") printf ", \"bytes_per_op\": %s", bop
			if (aop != "") printf ", \"allocs_per_op\": %s", aop
			printf "}"
		}
		END { printf "\n" }
	' "$RAW"
	printf '  ]\n}\n'
} >"$OUT"

echo "wrote $OUT"
