#!/usr/bin/env sh
# Benchmark-trajectory harness: runs the codec dataplane benchmarks with
# -benchmem and writes BENCH_codec.json (ns/op, MB/s, B/op, allocs/op per
# benchmark, plus the committed pre-optimization baseline from
# scripts/bench_baseline.json). Commit the refreshed snapshot alongside
# performance work so the trajectory of the kernels stays in the history.
#
# With a .scn spec as the second argument, the snapshot also carries that
# committed scenario's fleet numbers (joules per raw MB, fetch outcomes,
# virtual elapsed) at seed 1, pinning the bench trajectory to a declarative
# workload instead of only the hardcoded microbenchmark corpus.
#
# Usage: scripts/bench.sh [benchtime] [spec.scn]
#        (benchtime default 2s; e.g. 100x for a smoke run)
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
SPEC="${2:-}"
OUT=BENCH_codec.json
RAW=$(mktemp)
SCN=$(mktemp)
trap 'rm -f "$RAW" "$SCN"' EXIT

# Run the pinned scenario first so a broken spec fails the bench before
# the (slow) microbenchmarks run.
if [ -n "$SPEC" ]; then
	[ -f "$SPEC" ] || { echo "bench: spec not found: $SPEC" >&2; exit 1; }
	go run ./cmd/loadgen -spec "$SPEC" -seed 1 | tee "$SCN"
fi

# The decompression kernels and their enclosing dataplane paths.
go test -run '^$' \
	-bench 'BenchmarkCodecGzipDecompress$|BenchmarkCodecGzipCompress$|BenchmarkCodecCompressDecompress$|BenchmarkCodecBzip2Decompress$|BenchmarkStreamingGzipRoundTrip$|BenchmarkProxyFetchLoopback$' \
	-benchmem -benchtime "$BENCHTIME" . | tee "$RAW"
go test -run '^$' -bench 'BenchmarkDecodeWalker$|BenchmarkDecodeTable$' \
	-benchmem -benchtime "$BENCHTIME" ./internal/huffman | tee -a "$RAW"

{
	printf '{\n'
	printf '  "benchtime": "%s",\n' "$BENCHTIME"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "cpu": "%s",\n' "$(sed -n 's/^cpu: //p' "$RAW" | head -n 1)"
	printf '  "baseline": '
	if [ -f scripts/bench_baseline.json ]; then
		cat scripts/bench_baseline.json
	else
		printf 'null'
	fi
	if [ -n "$SPEC" ]; then
		printf ',\n  "scenario": '
		awk -v spec="$SPEC" '
			/^loadgen / {
				for (i = 1; i <= NF; i++) {
					if ($i ~ /^seed=/) { seed = $i; gsub(/[^0-9]/, "", seed) }
					if ($(i+1) == "clients,") clients = $i
					if ($(i+1) == "fetches") split($i, f, "/")
					if ($(i+1) == "virtual") virtual = $i
				}
			}
			/^energy: / {
				for (i = 1; i <= NF; i++) if ($(i+1) == "J/MB") jpmb = $i
			}
			END {
				printf "{\"spec\": \"%s\", \"seed\": %s, \"clients\": %s, \"fetches_ok\": %s, \"fetches\": %s, \"virtual\": \"%s\"", \
					spec, seed, clients, f[1], f[2], virtual
				if (jpmb != "") printf ", \"joules_per_mb\": %s", jpmb
				printf "}"
			}
		' "$SCN"
	fi
	printf ',\n  "results": [\n'
	awk '
		/^Benchmark/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			ns = ""; mbps = ""; bop = ""; aop = ""
			for (i = 3; i <= NF; i++) {
				if ($i == "ns/op") ns = $(i-1)
				if ($i == "MB/s") mbps = $(i-1)
				if ($i == "B/op") bop = $(i-1)
				if ($i == "allocs/op") aop = $(i-1)
			}
			if (!first) first = 1; else printf ",\n"
			printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, $2, ns
			if (mbps != "") printf ", \"mb_per_s\": %s", mbps
			if (bop != "") printf ", \"bytes_per_op\": %s", bop
			if (aop != "") printf ", \"allocs_per_op\": %s", aop
			printf "}"
		}
		END { printf "\n" }
	' "$RAW"
	printf '  ]\n}\n'
} >"$OUT"

echo "wrote $OUT"

# Compress-trajectory gate: the pooled encoder must hold its gains over the
# committed pre-rebuild baseline — at least 1.3x its MB/s and at most a
# tenth of its allocations per op. (The original 4x throughput target is
# not reachable on this runner: it exposes a single hardware thread and the
# single-stream encoder already runs at stdlib-flate parity, so the
# remaining wall time is the memory-latency-bound hash-chain walk. The
# parallel plane lifts multi-core throughput instead; its worker-count
# determinism is gated in ci.sh.)
BASE_MBPS=$(sed -n 's/.*"BenchmarkCodecGzipCompress".*"mb_per_s": \([0-9.]*\).*/\1/p' scripts/bench_baseline.json)
BASE_ALLOCS=$(sed -n 's/.*"BenchmarkCodecGzipCompress".*"allocs_per_op": \([0-9][0-9]*\).*/\1/p' scripts/bench_baseline.json)
CUR=$(awk '/^BenchmarkCodecGzipCompress/ {
	for (i = 3; i <= NF; i++) {
		if ($i == "MB/s") m = $(i-1)
		if ($i == "allocs/op") a = $(i-1)
	}
	print m, a
}' "$RAW")
CUR_MBPS=${CUR% *}
CUR_ALLOCS=${CUR#* }
if [ -n "$BASE_MBPS" ] && [ -n "$CUR_MBPS" ]; then
	if [ "$(awk -v c="$CUR_MBPS" -v b="$BASE_MBPS" 'BEGIN{print (c < 1.3 * b) ? 1 : 0}')" = 1 ]; then
		echo "compress gate: BenchmarkCodecGzipCompress at ${CUR_MBPS} MB/s, floor is 1.3x baseline ${BASE_MBPS}" >&2
		exit 1
	fi
	if [ "$(awk -v c="$CUR_ALLOCS" -v b="$BASE_ALLOCS" 'BEGIN{print (c > b / 10) ? 1 : 0}')" = 1 ]; then
		echo "compress gate: BenchmarkCodecGzipCompress at ${CUR_ALLOCS} allocs/op, ceiling is baseline ${BASE_ALLOCS} / 10" >&2
		exit 1
	fi
	echo "compress gate: ${CUR_MBPS} MB/s (baseline ${BASE_MBPS}), ${CUR_ALLOCS} allocs/op (baseline ${BASE_ALLOCS})"
else
	echo "compress gate: BenchmarkCodecGzipCompress missing from run or baseline" >&2
	exit 1
fi
