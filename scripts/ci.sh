#!/usr/bin/env sh
# CI gate: vet + lint + build + full test suite under the race detector
# (which includes the fault-injection stress test and the malicious-server
# suite), then an explicit race-mode pass over the hostile-wire and
# telemetry tests, short fuzz passes over the PXY3 wire-format and SEL1
# container parsers, a deterministic virtual-time soak with invariant
# oracles (fixed seeds plus one printed random seed for replay), the
# scenario-corpus gate (every declarative spec diffed against its golden
# trace at two pinned seeds plus a wall-clock seed, then the 10k-client
# load-generation fleet), the decider gate (dominance and deadline
# properties of the dynamic decider under -race, its fuzz target, and
# the paired static-vs-dynamic differential soak), the cluster soak gate (3-node ring replayed
# byte-identically at two pinned seeds, cluster-wide compression-count
# oracle under -race), the event-stream determinism + calibration gate
# (canonical telemetry JSONL byte-identical to its committed golden, and
# Table 1 re-fitted from it to within 1%), a per-package coverage
# ratchet, and an admin-plane smoke test over real HTTP. Every change to
# the proxy dataplane, wire path or telemetry layer must keep this green.
set -eux

cd "$(dirname "$0")/.."

go vet ./...

# Optional linters: run them when the host has them, skip cleanly when it
# does not (the gate must not install anything).
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not installed; skipping"
fi
if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./...
else
	echo "govulncheck not installed; skipping"
fi

go build ./...
go test -race ./...

# The hostile-wire gate: the retrying/resuming client must complete every
# fetch CRC-clean under the seeded fault plan, and lying servers must never
# provoke a panic, hang or attacker-sized allocation — all under -race.
go test -race -run 'TestFetchCompletesUnderFaults|TestFetchResumes|TestMalicious' ./internal/proxy

# The telemetry gate: registry/tracer hammering and the end-to-end
# observability test (stats/admin/trace consistency, energy attribution,
# goroutine-leak check) under -race.
go test -race ./internal/obs
go test -race -run 'TestObservabilityEndToEnd|TestPermanentErrorClassification' ./internal/proxy

# The decider property gate: the dynamic queue-aware decider must never
# cost more modeled joules than the static Eq. 6 choice, never violate a
# deadline the static choice met, and beat static somewhere — swept over
# the 11/5.5/2/1 Mb/s link rates, power-save on/off and every Table 3
# workload class, with calibrated coefficients from the committed
# soak-seed1 stream, under -race.
go test -race -run 'TestDynamicNeverWorseThanStatic|TestDynamicNeverViolatesDeadlineStaticMet|TestDynamicBeatsStaticSomewhere' ./internal/decider

go test -run='^$' -fuzz=FuzzScenarioSpec -fuzztime=10s ./internal/scenario
go test -run='^$' -fuzz=FuzzDynamicDecide -fuzztime=10s ./internal/decider
go test -run='^$' -fuzz=FuzzReadRequest -fuzztime=10s ./internal/proxy
go test -run='^$' -fuzz=FuzzReadBlockFrame -fuzztime=10s ./internal/proxy
go test -run='^$' -fuzz=FuzzGzipDifferential -fuzztime=10s ./internal/flate
go test -run='^$' -fuzz=FuzzDeflateDifferential -fuzztime=10s ./internal/flate
go test -run='^$' -fuzz=FuzzSELRoundTrip -fuzztime=10s ./internal/selective
go test -run='^$' -fuzz=FuzzSELParse -fuzztime=10s ./internal/selective

# Deterministic soak gate: seeded multi-client scenarios on the virtual
# testbed (internal/harness) with every invariant oracle armed — byte-exact
# payloads, counter reconciliation, energy conservation, monotone resume,
# goroutine leaks. Two fixed seeds pin known-good schedules; one wall-clock
# seed explores a fresh schedule every run and prints itself so any failure
# is replayable. The replay guarantee itself is gated by running seed 1
# twice and requiring byte-identical traces.
SOAK="go run ./cmd/energysim soak -clients 4 -fetches 10"
$SOAK -seed 1
$SOAK -seed 2
$SOAK -seed 1 -trace >/tmp/soak-a.$$ && $SOAK -seed 1 -trace >/tmp/soak-b.$$
cmp /tmp/soak-a.$$ /tmp/soak-b.$$
rm -f /tmp/soak-a.$$ /tmp/soak-b.$$
RANDOM_SEED=$(date +%s)
echo "soak random seed: $RANDOM_SEED (replay: go run ./cmd/energysim soak -seed $RANDOM_SEED -clients 4 -fetches 10 -trace)"
$SOAK -seed "$RANDOM_SEED"

# Differential soak gate: paired same-seed static-vs-dynamic runs at two
# pinned seeds — byte-exact payloads, modeled-energy dominance (strict,
# on a corpus where the policies genuinely diverge) and the deadline
# implication, under -race — then the CLI surface of the same oracle.
go test -race -run 'TestDifferentialSoak|TestDynamicDeciderTraceDeterministic' ./internal/harness
$SOAK -seed 1 -differential
$SOAK -seed 2 -differential

# Event-stream determinism gate: the canonical wide-event JSONL of a
# seeded soak must be byte-identical run to run AND match the committed
# golden stream (the one EXPERIMENTS.md's calibration section quotes).
# Then the calibrator must recover Table 1 from that stream to within 1%.
EVGATE="go run ./cmd/energysim soak -clients 4 -fetches 10 -fault 0 -churn 0 -seed 1"
$EVGATE -events /tmp/events-a.$$ >/dev/null && $EVGATE -events /tmp/events-b.$$ >/dev/null
cmp /tmp/events-a.$$ /tmp/events-b.$$
cmp /tmp/events-a.$$ testdata/events/soak-seed1.jsonl
rm -f /tmp/events-a.$$ /tmp/events-b.$$
go run ./cmd/energysim calib -events testdata/events/soak-seed1.jsonl | grep -q 'within 1%: yes'

# Scenario-corpus gate: every committed declarative spec replays at the
# two pinned golden seeds and must reproduce its committed canonical
# trace byte-for-byte, then runs once at the wall-clock seed above so
# bounds and oracles face a schedule nobody tuned for (no golden exists
# there; the seed is printed for replay). Finally the 10,000-client
# load-generation fleet must complete inside its expect bounds and
# report latency percentiles and joules/MB.
GATE_DIR=$(mktemp -d)
go build -o "$GATE_DIR/energysim" ./cmd/energysim
go build -o "$GATE_DIR/loadgen" ./cmd/loadgen
for spec in testdata/scenarios/*.scn; do
	name=$(basename "$spec" .scn)
	for seed in 1 2; do
		"$GATE_DIR/energysim" soak -scenario "$spec" -seed "$seed" -trace >"$GATE_DIR/trace"
		cmp "$GATE_DIR/trace" "testdata/scenarios/golden/$name.seed$seed.trace"
	done
	echo "scenario $name wall-clock seed: $RANDOM_SEED (replay: go run ./cmd/energysim soak -scenario $spec -seed $RANDOM_SEED -trace)"
	"$GATE_DIR/energysim" soak -scenario "$spec" -seed "$RANDOM_SEED"
done
"$GATE_DIR/loadgen" -spec testdata/scenarios/loadgen/fleet-10k.scn -seed "$RANDOM_SEED"

# Cluster soak gate: the 3-node consistent-hash ring scenario must replay
# byte-identically at two pinned seeds (run twice, traces compared — on
# top of the golden diff the corpus loop above already did), and the
# cluster-scope oracles — at most one compression per artifact key
# ring-wide, counters reconciled across nodes, ≥2x single-node aggregate
# throughput — must hold under the race detector, peer protocol included.
for seed in 1 2; do
	"$GATE_DIR/energysim" soak -scenario testdata/scenarios/cluster-3.scn -seed "$seed" -trace >"$GATE_DIR/cluster-a"
	"$GATE_DIR/energysim" soak -scenario testdata/scenarios/cluster-3.scn -seed "$seed" -trace >"$GATE_DIR/cluster-b"
	cmp "$GATE_DIR/cluster-a" "$GATE_DIR/cluster-b"
done
go test -race -run 'TestCluster' ./internal/harness
go test -race ./internal/cluster
rm -rf "$GATE_DIR"

# Coverage ratchet: per-package floors a few points under current levels,
# so test deletions and untested subsystems fail loudly. Raise a floor when
# a package's coverage rises; never lower one to make a change pass.
check_cover() {
	pkg=$1
	floor=$2
	pct=$(go test -cover "$pkg" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
	if [ -z "$pct" ]; then
		echo "coverage gate: no coverage reported for $pkg" >&2
		return 1
	fi
	if [ "$(awk -v p="$pct" -v f="$floor" 'BEGIN{print (p < f) ? 1 : 0}')" = 1 ]; then
		echo "coverage gate: $pkg at ${pct}%, floor is ${floor}%" >&2
		return 1
	fi
	echo "coverage: $pkg ${pct}% (floor ${floor}%)"
}
check_cover ./internal/proxy 88
check_cover ./internal/cluster 80
check_cover ./internal/simnet 80
check_cover ./internal/selective 89
check_cover ./internal/harness 80
check_cover ./internal/obs 86
check_cover ./internal/obs/export 90
check_cover ./internal/obs/agg 90
check_cover ./internal/calib 84
check_cover ./internal/decider 85
check_cover ./internal/energy 87
check_cover ./internal/scenario 88
check_cover ./internal/workload 93

# Decompression-kernel gates, without -race (the race runtime changes
# allocation counts): the pooled dataplane must stay O(1) buffers per
# block, event export with no sink must cost the fetch path zero
# allocations, the table-driven Huffman fast path must stay zero-alloc
# per symbol, and a 100x bench smoke proves every dataplane benchmark
# still runs (scripts/bench.sh is the full trajectory harness).
go test -run 'TestReadBlockPooledAllocs|TestGetBufRecycles|TestEmitFetchEventNoSinkZeroAlloc' -count=1 ./internal/proxy
go test -run 'TestDecodeLSBZeroAlloc' -count=1 ./internal/huffman
go test -run 'TestDeflateSteadyStateAllocs|TestStreamingWriterSteadyAllocs' -count=1 ./internal/flate

# Parallel-compression determinism gate: the chunked container and the
# selective encoder must emit byte-identical output for every worker count
# (1 vs N), so cached artifacts and golden traces never depend on core
# count or scheduling.
go test -run 'TestParallelCompressDeterminism|TestParallelBelowThresholdMatchesSequential' -count=1 ./internal/flate
go test -run 'TestCompressParallelDeterministic|TestCompressParallelFallbacks' -count=1 ./internal/codec
go test -run 'TestEncodeParallelMatchesSequential|TestEncodeBlocksParallelOrdering' -count=1 ./internal/selective
go test -run '^$' -bench 'BenchmarkCodec' -benchtime=100x .
go test -run '^$' -bench 'BenchmarkDecodeTable$' -benchtime=100x ./internal/huffman

# Admin-plane smoke: a real proxyd with -admin must answer /healthz,
# count a real fetch in /metrics, /statsz and /tracez, and exit cleanly
# on SIGTERM. Skips when curl is unavailable.
if command -v curl >/dev/null 2>&1; then
	SMOKE_DIR=$(mktemp -d)
	trap 'kill "$PROXYD_PID" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
	go build -o "$SMOKE_DIR/proxyd" ./cmd/proxyd
	go build -o "$SMOKE_DIR/hhfetch" ./cmd/hhfetch
	"$SMOKE_DIR/proxyd" -corpus -scale 0.03125 -addr 127.0.0.1:0 -admin 127.0.0.1:0 >"$SMOKE_DIR/proxyd.log" &
	PROXYD_PID=$!
	for _ in $(seq 1 50); do
		grep -q '^admin listening on ' "$SMOKE_DIR/proxyd.log" && break
		sleep 0.1
	done
	ADDR=$(sed -n 's/^proxyd serving .* on //p' "$SMOKE_DIR/proxyd.log")
	ADMIN=$(sed -n 's/^admin listening on //p' "$SMOKE_DIR/proxyd.log")
	curl -fsS "http://$ADMIN/healthz" | grep -q '^ok$'
	NAME=$("$SMOKE_DIR/hhfetch" -addr "$ADDR" -list | head -n 1)
	"$SMOKE_DIR/hhfetch" -addr "$ADDR" -name "$NAME" -mode ondemand -trace >/dev/null
	curl -fsS "http://$ADMIN/metrics" | grep -q '^proxy_requests_total [1-9]'
	curl -fsS "http://$ADMIN/statsz" | grep -q '"Requests"'
	curl -fsS "http://$ADMIN/tracez" | grep -q '"req_id"'
	curl -fsS "http://$ADMIN/tracez?name=serve&limit=1" | grep -q '"req_id"'
	curl -fsS "http://$ADMIN/eventsz" | grep -q '"span": "serve"'
	curl -fsS "http://$ADMIN/eventsz?name=serve&limit=1" | grep -q '"req_id"'
	curl -fsS "http://$ADMIN/eventsz?name=nosuch" | grep -q '^\[\]$'
	kill -TERM "$PROXYD_PID"
	wait "$PROXYD_PID"
else
	echo "curl not installed; skipping admin smoke"
fi
