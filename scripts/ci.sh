#!/usr/bin/env sh
# CI gate: vet + lint + build + full test suite under the race detector
# (which includes the fault-injection stress test and the malicious-server
# suite), then an explicit race-mode pass over the hostile-wire tests and a
# short fuzz pass over both PXY2 wire-format parsers. Every change to the
# proxy dataplane or wire path must keep this green.
set -eux

cd "$(dirname "$0")/.."

go vet ./...

# Optional linters: run them when the host has them, skip cleanly when it
# does not (the gate must not install anything).
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not installed; skipping"
fi
if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./...
else
	echo "govulncheck not installed; skipping"
fi

go build ./...
go test -race ./...

# The hostile-wire gate: the retrying/resuming client must complete every
# fetch CRC-clean under the seeded fault plan, and lying servers must never
# provoke a panic, hang or attacker-sized allocation — all under -race.
go test -race -run 'TestFetchCompletesUnderFaults|TestFetchResumes|TestMalicious' ./internal/proxy

go test -run='^$' -fuzz=FuzzReadRequest -fuzztime=10s ./internal/proxy
go test -run='^$' -fuzz=FuzzReadBlockFrame -fuzztime=10s ./internal/proxy
