#!/usr/bin/env sh
# CI gate: vet + build + full test suite under the race detector, then a
# short fuzz pass over both PXY1 wire-format parsers. Every change to the
# proxy dataplane must keep this green.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
go test -run='^$' -fuzz=FuzzReadRequest -fuzztime=10s ./internal/proxy
go test -run='^$' -fuzz=FuzzReadBlockFrame -fuzztime=10s ./internal/proxy
