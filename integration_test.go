package repro_test

// System-level integration tests: the whole corpus, every scheme, every
// proxy mode, content verified end to end over real sockets; and the
// simulated experiment stack cross-checked against the analytic model on
// the same bytes.

import (
	"bytes"
	"math"
	"net"
	"testing"
	"time"

	"repro"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// TestCorpusThroughProxyAllModes serves a miniature full corpus and
// fetches every file in every mode with every scheme, verifying content.
// The sweep runs over the deterministic virtual testbed (internal/simnet)
// at the paper's 11 Mb/s WaveLAN effective rate: connection deadlines and
// transfer pacing advance the simulated clock, so the test spends wall
// time only on real compute, never on sockets or sleeps.
func TestCorpusThroughProxyAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus proxy sweep")
	}
	clock := simnet.NewClock()
	nw := simnet.NewNetwork(clock, simnet.WaveLAN11())
	ln, err := nw.Listen("proxy")
	if err != nil {
		t.Fatal(err)
	}
	srv := repro.NewProxyServerWith(nil, repro.ProxyConfig{Clock: clock})
	specs := repro.ScaledCorpus(0.01)
	contents := make(map[string][]byte, len(specs))
	for _, s := range specs {
		data := s.Generate()
		contents[s.Name] = data
		srv.Register(s.Name, data)
	}
	srv.Serve(ln)
	defer srv.Close()
	cli := repro.NewProxyClient("proxy")
	cli.Clock = clock
	cli.Dial = func() (net.Conn, error) { return nw.Dial("proxy") }
	cli.Timeout = 5 * time.Minute

	fetches, cacheable := 0, 0
	clock.Run(func() {
		names, err := cli.List()
		if err != nil {
			t.Error(err)
			return
		}
		if len(names) != len(specs) {
			t.Errorf("listed %d files, registered %d", len(names), len(specs))
			return
		}

		for _, name := range names {
			for _, scheme := range []repro.Scheme{repro.Gzip, repro.Compress, repro.Bzip2, repro.Zlib} {
				for _, mode := range []repro.ProxyClientMode{repro.ProxyRaw, repro.ProxyOnDemand, repro.ProxySelective} {
					got, stats, err := cli.Fetch(name, scheme, mode)
					if err != nil {
						t.Errorf("%s/%v/%v: %v", name, scheme, mode, err)
						return
					}
					if !bytes.Equal(got, contents[name]) {
						t.Errorf("%s/%v/%v: content mismatch", name, scheme, mode)
						return
					}
					if stats.RawBytes != len(contents[name]) {
						t.Errorf("%s/%v/%v: raw bytes %d", name, scheme, mode, stats.RawBytes)
						return
					}
					fetches++
					if mode != repro.ProxyRaw {
						cacheable++
					}
				}
			}
		}

		// Repeat one compressing fetch: the sharded artifact cache must
		// serve it without re-compressing.
		if _, _, err := cli.Fetch(names[0], repro.Gzip, repro.ProxyOnDemand); err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		return
	}
	st := srv.Stats()
	if st.CacheHits < 1 {
		t.Errorf("repeat fetch was not a cache hit: %+v", st)
	}
	if st.CacheHits+st.CacheMisses != int64(cacheable)+1 {
		t.Errorf("hits(%d)+misses(%d) != %d cacheable fetches", st.CacheHits, st.CacheMisses, cacheable+1)
	}
	if st.Compressions+st.Coalesced != st.CacheMisses {
		t.Errorf("compressions(%d)+coalesced(%d) != misses(%d)", st.Compressions, st.Coalesced, st.CacheMisses)
	}
	if st.ConnsTotal != int64(fetches)+2 { // + the List call + the repeat fetch
		t.Errorf("ConnsTotal = %d, want %d", st.ConnsTotal, fetches+2)
	}
	if st.Errors != 0 {
		t.Errorf("server recorded %d errors during the sweep", st.Errors)
	}
}

// TestSimulationAgreesWithModelAcrossCorpus runs the interleaved pipeline
// over a corpus slice and cross-checks against the analytic model; this is
// the end-to-end statement of Figure 7 through the public API.
func TestSimulationAgreesWithModelAcrossCorpus(t *testing.T) {
	model := repro.Params11Mbps()
	checked := 0
	for _, spec := range repro.ScaledCorpus(0.1) {
		if !spec.Large || spec.PaperGzip < 1.5 {
			continue
		}
		data := spec.Generate()
		res, err := repro.RunExperiment(repro.ExperimentSpec{
			Data: data, Scheme: repro.Zlib, Mode: repro.ModeInterleaved,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := float64(res.RawBytes) / 1e6
		sc := float64(res.WireBytes) / 1e6
		pred := model.InterleavedEnergy(s, sc)
		if rel := math.Abs(pred-res.ExactEnergyJ) / res.ExactEnergyJ; rel > 0.08 {
			t.Errorf("%s: model %.4f vs sim %.4f (%.1f%%)", spec.Name, pred, res.ExactEnergyJ, rel*100)
		}
		checked++
		if checked >= 8 {
			break
		}
	}
	if checked < 5 {
		t.Fatalf("only %d files checked", checked)
	}
}

// TestEndToEndDecisionAgreement: the selective scheme's per-file outcome
// must agree with the whole-file Equation 6 decision for single-block
// files.
func TestEndToEndDecisionAgreement(t *testing.T) {
	c, err := repro.NewCodec(repro.Zlib, 9)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"compressible", workload.Generate(workload.ClassXML, 100_000, 1)},
		{"incompressible", workload.Generate(workload.ClassRandom, 100_000, 2)},
		{"tiny", workload.Generate(workload.ClassMail, 2_000, 3)},
	}
	for _, tc := range cases {
		stream, stats, err := repro.SelectiveEncode(tc.data, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		comp, err := c.Compress(tc.data)
		if err != nil {
			t.Fatal(err)
		}
		want := repro.ShouldCompress(len(tc.data), len(comp)) && len(tc.data) >= repro.FileThresholdBytes
		got := stats.BlocksCompressed > 0
		if got != want {
			t.Errorf("%s: selective compressed=%v, Eq.6 says %v", tc.name, got, want)
		}
		back, err := repro.SelectiveDecode(stream, 0)
		if err != nil || !bytes.Equal(back, tc.data) {
			t.Fatalf("%s: round trip: %v", tc.name, err)
		}
	}
}

// TestFullStackDownloadVsUploadAsymmetry: through the public API, confirm
// the reproduction's extension finding — level 9 is right for downloads
// (server compresses) and wrong for uploads (handheld compresses).
func TestFullStackDownloadVsUploadAsymmetry(t *testing.T) {
	data := workload.Generate(workload.ClassSource, 1_200_000, 9)

	down, err := repro.RunExperiment(repro.ExperimentSpec{
		Data: data, Scheme: repro.Zlib, Mode: repro.ModeInterleaved,
	})
	if err != nil {
		t.Fatal(err)
	}
	downPlain, err := repro.RunExperiment(repro.ExperimentSpec{Data: data, Mode: repro.ModePlain})
	if err != nil {
		t.Fatal(err)
	}
	if !(down.ExactEnergyJ < downPlain.ExactEnergyJ*0.6) {
		t.Errorf("download at level 9 should save >40%%: %.3f vs %.3f",
			down.ExactEnergyJ, downPlain.ExactEnergyJ)
	}

	upSlow, err := repro.RunUpload(repro.UploadSpec{Data: data, Scheme: repro.Zlib, Level: 9, Compressed: true})
	if err != nil {
		t.Fatal(err)
	}
	upFast, err := repro.RunUpload(repro.UploadSpec{Data: data, Scheme: repro.Zlib, Level: 1, Compressed: true})
	if err != nil {
		t.Fatal(err)
	}
	if !(upFast.ExactEnergyJ < upSlow.ExactEnergyJ) {
		t.Errorf("upload should prefer the fast level: %.3f vs %.3f",
			upFast.ExactEnergyJ, upSlow.ExactEnergyJ)
	}
}
