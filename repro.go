// Package repro is a complete reproduction of "Impact of Data Compression
// on Energy Consumption of Wireless-Networked Handheld Devices" (Xu, Li,
// Wang, Ni — Purdue CSD-TR-03-003 / ICDCS 2003).
//
// It bundles, behind one public API:
//
//   - from-scratch implementations of the paper's three universal lossless
//     compression schemes — gzip (LZ77/DEFLATE), compress (LZW) and bzip2
//     (Burrows-Wheeler) — plus the zlib container (Codec, NewCodec);
//   - the paper's analytical energy model for compressed downloading,
//     Equations 1-6, with the published parameters (EnergyModel,
//     Params11Mbps, Params2Mbps);
//   - a simulated iPAQ 3650 + WaveLAN 802.11b testbed — power-state
//     machine, packet-level link, sampling multimeter — calibrated with
//     the paper's Table 1 currents and fitted coefficients (RunExperiment);
//   - the block-by-block selective compression scheme of Section 4.3
//     (SelectiveEncode/SelectiveDecode);
//   - a real TCP proxy server and interleaving handheld client
//     (NewProxyServer, NewProxyClient);
//   - the experiment harness that regenerates every table and figure of
//     the paper's evaluation (ExperimentConfig and the Render* helpers).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package repro

import (
	"io"
	"log/slog"
	"time"

	"repro/internal/calib"
	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/decider"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/experiment"
	"repro/internal/flate"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/pipeline"
	"repro/internal/proxy"
	"repro/internal/proxy/faultconn"
	"repro/internal/selective"
	"repro/internal/session"
	"repro/internal/wlan"
	"repro/internal/workload"
)

// Scheme identifies a compression scheme.
type Scheme = codec.Scheme

// The paper's compression schemes.
const (
	Gzip     = codec.Gzip
	Compress = codec.Compress
	Bzip2    = codec.Bzip2
	Zlib     = codec.Zlib
)

// Codec compresses and decompresses byte buffers.
type Codec = codec.Codec

// NewCodec returns a codec for the scheme at the given level; level 0
// selects the paper's setting (gzip -9, compress -b 16, bzip2 -9).
func NewCodec(s Scheme, level int) (Codec, error) { return codec.New(s, level) }

// Schemes lists the three schemes of the paper's comparison.
func Schemes() []Scheme { return codec.Schemes() }

// NewGzipWriter returns a streaming gzip compressor (io.WriteCloser) at
// the given level; large inputs compress in constant memory.
func NewGzipWriter(w io.Writer, level int) (io.WriteCloser, error) {
	return flate.NewWriter(w, level)
}

// NewGzipReader returns a streaming gzip decompressor (io.Reader) that
// verifies the CRC-32 trailer at EOF.
func NewGzipReader(r io.Reader) io.Reader { return flate.NewReader(r) }

// CompressionFactor is input size over output size.
func CompressionFactor(rawSize, compSize int) float64 { return codec.Factor(rawSize, compSize) }

// EnergyModel is the paper's analytical model (Equations 1-6); sizes are
// in MB, energies in joules.
type EnergyModel = energy.Params

// Params11Mbps returns the model at the paper's primary 11 Mb/s setting.
func Params11Mbps() EnergyModel { return energy.Params11Mbps() }

// Params2Mbps returns the model at the 2 Mb/s validation setting.
func Params2Mbps() EnergyModel { return energy.Params2Mbps() }

// EnergyBreakdown attributes one transfer's modeled energy to the
// hardware spending it: radio (receive + start-up), CPU (decompression)
// and the unreclaimed CPU-idle residual. The parts sum exactly to the
// corresponding whole-transfer equation.
type EnergyBreakdown = energy.Breakdown

// ShouldCompress is the paper's Equation 6 decision test on byte sizes.
func ShouldCompress(rawBytes, compBytes int) bool {
	return energy.PaperShouldCompress(rawBytes, compBytes)
}

// FileThresholdBytes is the size below which files are never compressed.
const FileThresholdBytes = energy.PaperFileThresholdBytes

// ExperimentSpec describes one simulated download experiment.
type ExperimentSpec = pipeline.Spec

// ExperimentResult is the outcome of a simulated experiment.
type ExperimentResult = pipeline.Result

// Execution modes for RunExperiment.
const (
	ModePlain       = pipeline.ModePlain
	ModeSequential  = pipeline.ModeSequential
	ModeInterleaved = pipeline.ModeInterleaved
)

// RunExperiment compresses real bytes with the real codecs and replays the
// transfer on the simulated device/link/meter stack.
func RunExperiment(spec ExperimentSpec) (ExperimentResult, error) { return pipeline.Run(spec) }

// UploadSpec describes one simulated upload experiment (the extension of
// the paper's Section 7: the handheld compresses, then sends).
type UploadSpec = pipeline.UploadSpec

// RunUpload executes an upload experiment.
func RunUpload(spec UploadSpec) (ExperimentResult, error) { return pipeline.RunUpload(spec) }

// RateConfig describes an 802.11b rate point.
type RateConfig = wlan.RateConfig

// Rate constructors for the measured and interpolated 802.11b settings.
var (
	Rate11Mbps  = wlan.Rate11Mbps
	Rate5_5Mbps = wlan.Rate5_5Mbps
	Rate2Mbps   = wlan.Rate2Mbps
	Rate1Mbps   = wlan.Rate1Mbps
)

// SelectiveDecider is the per-block compression decision test.
type SelectiveDecider = selective.Decider

// Deciders for the selective scheme.
type (
	// PaperDecider applies the paper's literal Equation 6.
	PaperDecider = selective.PaperDecider
	// ModelDecider derives decisions from an EnergyModel.
	ModelDecider = selective.ModelDecider
)

// SelectiveBlockSize is the 0.128 MB compression buffer.
const SelectiveBlockSize = selective.BlockSize

// DynamicDecider is the queue-aware, link-adaptive selective-mode policy:
// it re-evaluates the energy model per block against the live link rate,
// power-save flag and server compression-queue depth, honoring a deadline
// class, and is property-proven never worse in modeled joules than the
// paper's static Equation 6 under the same model. It implements
// SelectiveDecider, so it drops into ProxyConfig.Decider and every
// selective encode path.
type DynamicDecider = decider.DynamicDecider

// DynamicDeciderConfig assembles a DynamicDecider: base (possibly
// calibrated) model parameters, live link and queue hooks, default
// deadline class and advisory energy budget. The zero value is valid —
// static Table 1 constants, link pinned at 11 Mb/s, empty queue.
type DynamicDeciderConfig = decider.Config

// DeadlineClass is a client's declared latency slack for compression
// wins, as a multiple of the raw transfer time.
type DeadlineClass = decider.Class

// The deadline classes, loosest to tightest.
const (
	DeadlineNone     = decider.ClassNone
	DeadlineRelaxed  = decider.ClassRelaxed
	DeadlineStandard = decider.ClassStandard
	DeadlineStrict   = decider.ClassStrict
)

// ParseDeadlineClass maps a class name ("none", "relaxed", "standard",
// "strict") to its DeadlineClass; the scenario grammar and the proxyd /
// energysim flags share this vocabulary.
func ParseDeadlineClass(s string) (DeadlineClass, bool) { return decider.ParseClass(s) }

// NewDynamicDecider builds the dynamic decider.
func NewDynamicDecider(cfg DynamicDeciderConfig) *DynamicDecider { return decider.New(cfg) }

// LoadCalibrationFile reads a wide-event JSONL stream (the telemetry
// export format), calibrates it, and returns the fit for the requested
// device class ("" selects the first fitted device) — the loader behind
// `proxyd -calib FILE`.
func LoadCalibrationFile(path, device string) (CalibrationFit, error) {
	return decider.LoadCalibration(path, device)
}

// ParamsFromCalibration overlays a fleet calibration on its reference
// parameter set. The bool reports whether any fitted coefficient was
// applied; false means the caller should fall back to the static set.
func ParamsFromCalibration(f CalibrationFit) (EnergyModel, bool) {
	return decider.ParamsFromFit(f)
}

// SelectiveEncode applies the Figure 10 block-by-block adaptive scheme and
// returns the container bytes plus summary statistics.
func SelectiveEncode(data []byte, c Codec, d SelectiveDecider) ([]byte, selective.Stats, error) {
	if d == nil {
		d = selective.PaperDecider{}
	}
	enc, err := selective.Encode(data, c, d)
	if err != nil {
		return nil, selective.Stats{}, err
	}
	return enc.Bytes(), enc.Stats(), nil
}

// SelectiveDecode decodes a selective container. maxSize, if positive,
// bounds the output.
func SelectiveDecode(stream []byte, maxSize int) ([]byte, error) {
	return selective.Decode(stream, maxSize)
}

// ProxyServer is the stationary proxy of the paper's testbed.
type ProxyServer = proxy.Server

// ProxyClient is the handheld-side download client with interleaved
// decompression.
type ProxyClient = proxy.Client

// ProxyClientMode selects how the proxy serves a fetch.
type ProxyClientMode = proxy.Mode

// ProxyConfig tunes the proxy server's dataplane: artifact-cache byte
// budget and shard count, compression worker bound, connection cap, and
// per-connection deadlines. The zero value selects defaults.
type ProxyConfig = proxy.Config

// ProxyStats is a snapshot of the proxy server's counters (cache
// hits/misses, singleflight coalescing, bytes served raw vs compressed,
// connection counts and the latency histogram).
type ProxyStats = proxy.Stats

// Proxy transfer modes.
const (
	ProxyRaw           = proxy.ModeRaw
	ProxyPrecompressed = proxy.ModePrecompressed
	ProxyOnDemand      = proxy.ModeOnDemand
	ProxySelective     = proxy.ModeSelective
)

// NewProxyServer returns a proxy server; decider nil selects Equation 6.
func NewProxyServer(decider SelectiveDecider) *ProxyServer { return proxy.NewServer(decider) }

// NewProxyServerWith returns a proxy server with an explicit dataplane
// configuration.
func NewProxyServerWith(decider SelectiveDecider, cfg ProxyConfig) *ProxyServer {
	return proxy.NewServerWith(decider, cfg)
}

// NewProxyClient returns a client for the proxy at addr.
func NewProxyClient(addr string) *ProxyClient { return proxy.NewClient(addr) }

// ClusterNode joins a proxy server to a consistent-hash ring of peers: it
// serves the PXY-P peer protocol and hooks the server's miss path so cache
// misses for artifact keys owned elsewhere fetch the finished compressed
// artifact from the owner instead of recompressing. Hot keys (top-K by a
// frequency sketch) are admitted into the local cache and replicated to
// ring successors; Register broadcasts generation bumps ring-wide.
type ClusterNode = cluster.Node

// ClusterConfig wires one proxy server into a cluster: node identity, ring
// membership, replication factor, hot-key admission budget and the peer
// dial function.
type ClusterConfig = cluster.Config

// ClusterRing is the consistent-hash ring (hashed vnodes) mapping artifact
// keys to owner nodes.
type ClusterRing = cluster.Ring

// NewClusterNode builds a cluster node and installs its peer-fetch hook on
// the configured proxy server. Call Serve with the peer listener to accept
// PXY-P traffic, and Close before the proxy shuts down.
func NewClusterNode(cfg ClusterConfig) (*ClusterNode, error) { return cluster.NewNode(cfg) }

// NewClusterRing builds a ring over the node IDs; vnodes 0 selects the
// default (64 per node).
func NewClusterRing(nodes []string, vnodes int) *ClusterRing { return cluster.NewRing(nodes, vnodes) }

// MetricsRegistry holds named counters, gauges and histograms; the proxy
// server and client register their instruments on one, and its snapshot
// renders as Prometheus text (the admin plane's /metrics) or JSON.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Tracer retains the most recent finished request spans in a bounded ring
// buffer; install one on a ProxyServer (ProxyConfig.Tracer) or a
// ProxyClient (Client.Tracer) to capture per-request phase timelines with
// modeled per-phase joules.
type Tracer = obs.Tracer

// TraceSpan is one finished span: the phase timeline of a request with
// its energy attribution, as served by /tracez and printed by
// hhfetch -trace.
type TraceSpan = obs.SpanData

// NewTracer returns a tracer retaining up to capacity finished spans.
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// TelemetryEvent is one wide event of the telemetry pipeline: the
// flattened record of a finished fetch or serve span (request ID, scheme,
// device class, bytes, attempts, per-phase durations, per-class joules).
// Its JSON field set is a stable contract (README "Telemetry and
// calibration").
type TelemetryEvent = export.Event

// Device classes tagging telemetry events, the calibrator's grouping key.
const (
	DeviceIPAQ11 = export.DeviceIPAQ11
	DeviceIPAQ2  = export.DeviceIPAQ2
)

// EventSink delivers wide events to an io.Writer as JSONL without ever
// blocking the dataplane (full buffers drop and count) and retains a
// bounded ring of recent events for /eventsz. Install one on a
// ProxyClient (Client.Events) or ProxyServer (ProxyConfig.Events).
type EventSink = export.Sink

// NewEventSink starts a sink draining to w (nil keeps only the ring);
// buffer and ring sizes <= 0 select defaults. Close it to flush.
func NewEventSink(w io.Writer, buffer, ring int) *EventSink {
	return export.NewSink(w, buffer, ring)
}

// CalibrationFit is one device class's energy-model coefficients re-fitted
// from a wide-event stream, scored against the paper's Table 1 parameters.
type CalibrationFit = calib.Fit

// CalibrateEvents re-derives td(s, sc) and E(s) per device class from an
// event stream, the way the paper fit Figure 8a/8b from measured traces.
func CalibrateEvents(events []TelemetryEvent) ([]CalibrationFit, error) {
	return calib.Calibrate(events)
}

// NewStructuredLogger returns a structured text logger at the given level
// ("debug", "info", "warn" or "error") for ProxyConfig.Logger or
// ProxyClient.Logger.
func NewStructuredLogger(w io.Writer, level string) (*slog.Logger, error) {
	lv, err := obs.ParseLevel(level)
	if err != nil {
		return nil, err
	}
	return obs.NewLogger(w, lv), nil
}

// FaultPlan is a seeded, deterministic fault-injection schedule for the
// proxy wire path: injected delays, fragmented writes, mid-stream resets,
// truncation and payload bit-flips. Install one on a server via
// ProxyConfig.WrapConn (plan.Wrapper()) to model the paper's lossy
// 802.11b link instead of a loopback that never fails.
type FaultPlan = faultconn.Plan

// FileSpec describes one corpus file from the paper's Table 2.
type FileSpec = workload.FileSpec

// Corpus returns the paper's Table 2 corpus specification.
func Corpus() []FileSpec { return workload.Table2() }

// ScaledCorpus returns the corpus with large files scaled by factor.
func ScaledCorpus(factor float64) []FileSpec { return workload.ScaledCorpus(factor) }

// GenerateMixedFile produces tar-like content alternating compressible and
// incompressible blocks (Section 4.3's motivating case).
func GenerateMixedFile(size int, seed uint64) []byte { return workload.MixedFile(size, seed) }

// ExperimentConfig controls the table/figure regeneration harness.
type ExperimentConfig = experiment.Config

// SessionSpec describes a multi-request browse session for the radio
// idle-management policy study (the paper's Section 2 discussion).
type SessionSpec = session.Spec

// SessionRequest is one request of a session.
type SessionRequest = session.Request

// Radio idle-management policies.
const (
	PolicyAlwaysOn        = session.AlwaysOn
	PolicyHardwarePS      = session.HardwarePS
	PolicyPredictiveSleep = session.PredictiveSleep
)

// RunSession executes a session under a policy.
func RunSession(spec SessionSpec) (session.Result, error) { return session.Run(spec) }

// WebSession builds a deterministic browse-like request mix.
func WebSession(n int, meanGap time.Duration, meanBytes int, seed int64) []SessionRequest {
	return session.WebSession(n, meanGap, meanBytes, seed)
}

// Battery models the handheld's energy store for lifetime estimates.
type Battery = device.Battery

// IPAQBattery returns the iPAQ 3650's 1500 mAh pack.
func IPAQBattery() Battery { return device.IPAQBattery() }
