// Command loadgen executes one declarative scenario spec with a large
// fleet of virtual clients on the deterministic testbed and reports the
// fleet's service metrics: fetch-latency percentiles (virtual time),
// modeled joules per raw megabyte with the paper's radio/cpu/idle
// split, and per-scheme delivery throughput. It is the load-generation
// face of the same machinery `energysim soak` gates on — the open-lambda
// style "many tiny clients, one shared platform" shape — so a 10,000
// client run is still seed-replayable and still checked by every
// invariant oracle and expect bound.
//
// Usage:
//
//	loadgen -spec testdata/scenarios/loadgen/fleet-10k.scn -seed 1
//	loadgen -spec spec.scn -clients 500 -fetches 3 -metrics
//	loadgen -spec spec.scn -decider dynamic
//
// Exit status is non-zero if any oracle or bound is violated; the
// first violation is printed so CI logs lead with the failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/agg"
	"repro/internal/obs/export"
	"repro/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		specPath = flag.String("spec", "", "scenario spec file to execute (required)")
		seed     = flag.Int64("seed", 1, "fleet seed; same seed => byte-identical run")
		clients  = flag.Int("clients", 0, "override the spec's client count")
		fetches  = flag.Int("fetches", 0, "override the spec's fetches per client")
		nodes    = flag.Int("nodes", 0, "override the spec's cluster node count (1 forces a single node)")
		replicas = flag.Int("replicas", -1, "override the spec's hot-key replication factor")
		hotK     = flag.Int("hotk", -1, "override the spec's hot-key admission budget")
		deciderP = flag.String("decider", "", "override the spec's selective-mode policy (static or dynamic)")
		metrics  = flag.Bool("metrics", false, "dump the metrics registry in Prometheus text format")
		events   = flag.String("events", "", "write the canonical wide-event stream as JSONL to this file")
	)
	flag.Parse()
	if *specPath == "" {
		return fmt.Errorf("-spec is required")
	}
	spec, err := scenario.Load(*specPath)
	if err != nil {
		return err
	}
	if *clients > 0 {
		spec.Clients = *clients
	}
	if *fetches > 0 {
		spec.Fetches = *fetches
	}
	if *nodes > 0 {
		spec.Cluster.Nodes = *nodes
		// A smaller ring can't hold the spec's replication factor; clamp it
		// so `-nodes 1` (the single-node baseline of a scaling comparison)
		// works against any cluster spec.
		if spec.Cluster.Replicas > *nodes-1 {
			spec.Cluster.Replicas = *nodes - 1
		}
	}
	if *replicas >= 0 {
		spec.Cluster.Replicas = *replicas
	}
	if *hotK >= 0 {
		spec.Cluster.HotK = *hotK
	}
	if *deciderP != "" {
		spec.Decider = *deciderP
	}
	if err := spec.Validate(); err != nil {
		return err
	}

	start := time.Now()
	rep, err := spec.Run(*seed)
	if err != nil {
		return err
	}
	report(os.Stdout, spec.Name, *seed, rep, time.Since(start))
	if *events != "" {
		f, ferr := os.Create(*events)
		if ferr != nil {
			return ferr
		}
		werr := export.WriteJSONL(f, rep.Events())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing events: %w", werr)
		}
	}
	if *metrics {
		if err := obs.WritePrometheus(os.Stdout, fleetRegistry(rep).Snapshot()); err != nil {
			return err
		}
	}
	for _, v := range rep.Violations {
		fmt.Fprintln(os.Stderr, "violation:", v)
	}
	if len(rep.Violations) > 0 {
		return fmt.Errorf("%s seed=%d: %d violations; first: %s (replay: loadgen -spec %s -seed %d)",
			spec.Name, *seed, len(rep.Violations), rep.Violations[0], *specPath, *seed)
	}
	return nil
}

// schemeStat accumulates per-(scheme, mode) delivery totals.
type schemeStat struct {
	key     string
	fetches int
	rawMB   float64
	virtual time.Duration
}

// report prints the fleet summary: outcome counts, latency percentiles
// over successful fetches, the energy account, and per-scheme
// throughput (raw MB delivered per virtual second spent fetching it).
func report(w *os.File, name string, seed int64, rep *harness.Report, wall time.Duration) {
	ok := 0
	var lat []time.Duration
	perScheme := map[string]*schemeStat{}
	for _, rec := range rep.Records {
		if rec.Err != "" {
			continue
		}
		ok++
		lat = append(lat, rec.Virtual)
		key := fmt.Sprintf("%s/%s", rec.Scheme, rec.Mode)
		st := perScheme[key]
		if st == nil {
			st = &schemeStat{key: key}
			perScheme[key] = st
		}
		st.fetches++
		st.rawMB += float64(rec.Raw) / 1e6
		st.virtual += rec.Virtual
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })

	fmt.Fprintf(w, "loadgen %s seed=%d: %d clients, %d/%d fetches ok in %s virtual (%s wall)\n",
		name, seed, rep.Scenario.Clients, ok, len(rep.Records), rep.Elapsed, wall.Round(time.Millisecond))
	fmt.Fprintf(w, "latency: p50=%s p99=%s p999=%s max=%s\n",
		agg.Percentile(lat, 0.50), agg.Percentile(lat, 0.99), agg.Percentile(lat, 0.999), agg.Percentile(lat, 1))

	joules, rawMB := rep.EnergyDelivered()
	if rawMB > 0 {
		fmt.Fprintf(w, "energy: %.1f J for %.2f raw MB = %.2f J/MB", joules, rawMB, joules/rawMB)
		byClass := rep.EnergyByClass()
		for _, class := range []string{"radio", "cpu", "idle"} {
			if j, ok := byClass[class]; ok {
				fmt.Fprintf(w, " (%s %.1f%%)", class, 100*j/joules)
			}
		}
		fmt.Fprintln(w)
	}

	// On a cluster run, break the aggregate down per ring node so skew
	// (pinning imbalance, a hot owner) is visible at a glance.
	if len(rep.PerNode) > 0 {
		fmt.Fprintf(w, "cluster: %d nodes, %d peer fetches (%d failed), ring routing %d owner / %d remote\n",
			len(rep.PerNode), rep.Stats.PeerFetches, rep.Stats.PeerFetchErrors,
			rep.Stats.RingOwnerHits, rep.Stats.RingRemoteHits)
		// Aggregate serve throughput over the client makespan (first fetch
		// start to last fetch end) — Elapsed also counts the post-run timer
		// drain, which would understate every configuration equally.
		if ms := rep.ClientMakespan(); ms > 0 {
			var raw, wire int64
			for _, rec := range rep.Records {
				if rec.Err == "" {
					raw += int64(rec.Raw)
					wire += int64(rec.Stats.WireBytes)
				}
			}
			fmt.Fprintf(w, "cluster makespan: %s; aggregate %.3f raw MB/s (%.3f wire MB/s)\n",
				ms, float64(raw)/1e6/ms.Seconds(), float64(wire)/1e6/ms.Seconds())
		}
		for i, st := range rep.PerNode {
			fmt.Fprintf(w, "node n%d: %5d conns %6d hits %6d misses %4d compressions %4d peer fetches %9d B served\n",
				i, st.ConnsTotal, st.CacheHits, st.CacheMisses, st.Compressions,
				st.PeerFetches, st.BytesServedRaw+st.BytesServedCompressed)
		}
	}

	keys := make([]string, 0, len(perScheme))
	for k := range perScheme {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := perScheme[k]
		thru := 0.0
		if st.virtual > 0 {
			thru = st.rawMB / st.virtual.Seconds()
		}
		fmt.Fprintf(w, "scheme %-24s %6d fetches %8.2f MB %8.3f MB/s\n", st.key, st.fetches, st.rawMB, thru)
	}
}

// fleetRegistry folds the finished run into an obs registry so the
// fleet shows up on the same metrics plane as the live dataplane:
// counters for fetch outcomes and bytes, a histogram for latency.
func fleetRegistry(rep *harness.Report) *obs.Registry {
	reg := obs.NewRegistry()
	okC := reg.Counter("loadgen_fetches_ok_total", "successful fetches")
	errC := reg.Counter("loadgen_fetches_err_total", "failed fetches")
	rawC := reg.Counter("loadgen_raw_bytes_total", "raw payload bytes delivered")
	wireC := reg.Counter("loadgen_wire_bytes_total", "wire bytes carried for delivered payloads")
	// Virtual-latency buckets from 1 ms to ~2 min, doubling.
	bounds := make([]float64, 0, 18)
	for ms := 1.0; ms <= 131072; ms *= 2 {
		bounds = append(bounds, ms/1e3)
	}
	latH := reg.Histogram("loadgen_fetch_latency_seconds", "per-fetch virtual latency", bounds)
	for _, rec := range rep.Records {
		if rec.Err != "" {
			errC.Inc()
			continue
		}
		okC.Inc()
		rawC.Add(int64(rec.Raw))
		wireC.Add(int64(rec.Stats.WireBytes))
		latH.Observe(rec.Virtual.Seconds())
	}
	return reg
}
