// Command proxyd runs the proxy server: it registers either a directory of
// files or the built-in synthetic corpus and serves raw, precompressed,
// on-demand and selective downloads over TCP.
//
// Usage:
//
//	proxyd -addr 127.0.0.1:7070 -corpus -scale 0.125
//	proxyd -addr 127.0.0.1:7070 -dir ./files -precompress gzip
//	proxyd -addr 127.0.0.1:7070 -corpus -cache-bytes 134217728 -workers 8
//	proxyd -addr 127.0.0.1:7070 -corpus -fault-rate 0.01 -fault-seed 42
//	proxyd -addr 127.0.0.1:7070 -corpus -admin 127.0.0.1:9090 -log-level info
//	proxyd -addr 127.0.0.1:7070 -corpus -decider dynamic -calib soak.jsonl
//	proxyd -addr 127.0.0.1:7070 -corpus -node-id a -peer-addr 127.0.0.1:7170 \
//	    -peers b=127.0.0.1:7171,c=127.0.0.1:7172 -replicas 1 -hotk 64
//
// -decider dynamic swaps the selective-mode policy from the paper's
// static Equation 6 to the queue-aware dynamic decider; -calib fits its
// energy-model coefficients from a previously exported wide-event JSONL
// stream (falling back to the static Table 1 set when the stream has no
// usable fit). Selective-mode artifacts are cached under the decider's
// fingerprint, so static and dynamic artifacts never alias.
//
// The cluster form joins a consistent-hash ring: this node plus every -peers
// entry form the membership, cache misses for artifact keys owned by a
// peer fetch the finished compressed artifact over the PXY-P protocol on
// -peer-addr instead of recompressing, and hot keys replicate to -replicas
// ring successors. Every node must be started with the same membership
// (its own ID appearing in the others' -peers lists).
//
// SIGUSR1 prints a dataplane stats snapshot (cache hits/misses,
// singleflight coalescing, bytes served, connection latency histogram);
// the same report prints at shutdown. With -admin, the same counters are
// served live over HTTP: /metrics (Prometheus text), /statsz (JSON),
// /tracez (recent request spans), /healthz, and /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "proxyd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "listen address")
		dir        = flag.String("dir", "", "serve files from this directory")
		useCorpus  = flag.Bool("corpus", false, "serve the built-in synthetic Table 2 corpus")
		scale      = flag.Float64("scale", 0.125, "corpus size scale")
		precompSch = flag.String("precompress", "", "precompress all files with this scheme (gzip, compress, bzip2, zlib)")
		cacheBytes = flag.Int64("cache-bytes", 64<<20, "compressed-artifact cache budget in bytes (negative disables)")
		workers    = flag.Int("workers", 0, "max concurrent compressions (0 = GOMAXPROCS)")
		maxConns   = flag.Int("max-conns", 0, "max concurrent connections (0 = 256)")
		faultRate  = flag.Float64("fault-rate", 0, "per-I/O fault probability for resets, truncations and bit-flips (0 disables injection)")
		faultSeed  = flag.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
		adminAddr  = flag.String("admin", "", "serve the admin plane (/metrics, /statsz, /tracez, /eventsz, /healthz, /debug/pprof) on this address")
		logLevel   = flag.String("log-level", "warn", "structured log level: debug, info, warn, error")
		eventsPath = flag.String("events", "", "write serve-side wide events as JSONL to this file")
		deciderPol = flag.String("decider", "static", "selective-mode decision policy: static (Eq. 6) or dynamic (queue-aware energy model)")
		calibPath  = flag.String("calib", "", "wide-event JSONL stream to fit the dynamic decider's coefficients from (requires -decider dynamic)")
		calibDev   = flag.String("calib-device", "", "device class to take from -calib (default: first fitted device)")
		nodeID     = flag.String("node-id", "", "this node's cluster ID (enables cluster mode)")
		peerAddr   = flag.String("peer-addr", "", "listen address for the PXY-P peer protocol (required with -node-id)")
		peersFlag  = flag.String("peers", "", "comma-separated id=host:port peer list forming the ring with this node")
		replicas   = flag.Int("replicas", 0, "replicate hot artifacts to this many ring successors")
		hotK       = flag.Int("hotk", 64, "hot-key admission budget: peer-fetched artifacts are cached only while in the top-K")
	)
	flag.Parse()

	logger, err := repro.NewStructuredLogger(os.Stderr, *logLevel)
	if err != nil {
		return err
	}
	// The sink always exists so /eventsz serves the recent-event ring even
	// without -events; a file just adds the JSONL drain.
	var eventsFile *os.File
	if *eventsPath != "" {
		eventsFile, err = os.Create(*eventsPath)
		if err != nil {
			return err
		}
	}
	var sinkWriter io.Writer
	if eventsFile != nil {
		sinkWriter = eventsFile
	}
	sink := repro.NewEventSink(sinkWriter, 0, 0)
	cfg := repro.ProxyConfig{
		CacheBytes: *cacheBytes,
		Workers:    *workers,
		MaxConns:   *maxConns,
		Logger:     logger,
		Events:     sink,
	}
	switch *deciderPol {
	case "", "static":
		if *calibPath != "" {
			return fmt.Errorf("-calib requires -decider dynamic")
		}
	case "dynamic":
		// The dynamic decider: calibrated coefficients when -calib fits,
		// the static Table 1 set otherwise (the documented calib → static
		// fallback order). The queue hook is left unset so the server binds
		// its live compression-queue gauge at construction.
		dcfg := repro.DynamicDeciderConfig{}
		if *calibPath != "" {
			fit, err := repro.LoadCalibrationFile(*calibPath, *calibDev)
			if err != nil {
				return err
			}
			params, applied := repro.ParamsFromCalibration(fit)
			if applied {
				dcfg.Base = params
				dcfg.Calibrated = true
				fmt.Printf("decider: calibrated from %s (device %s, max coefficient deviation %.2e)\n",
					*calibPath, fit.Device, fit.MaxCoefRelErr())
			} else {
				fmt.Printf("decider: calibration %s had no usable fit; falling back to static Table 1 coefficients\n", *calibPath)
			}
		}
		d := repro.NewDynamicDecider(dcfg)
		cfg.Decider = d
		fmt.Printf("decider: %s\n", d.Fingerprint())
	default:
		return fmt.Errorf("-decider %q: want static or dynamic", *deciderPol)
	}
	if *faultRate > 0 {
		plan := repro.FaultPlan{
			Seed:         *faultSeed,
			DelayProb:    5 * *faultRate,
			FragmentProb: 20 * *faultRate,
			ResetProb:    *faultRate,
			TruncateProb: *faultRate,
			BitFlipProb:  *faultRate,
		}
		cfg.WrapConn = plan.Wrapper()
		fmt.Printf("fault injection armed: rate %g, seed %d\n", *faultRate, *faultSeed)
	}
	srv := repro.NewProxyServerWith(nil, cfg)
	count := 0
	switch {
	case *dir != "":
		entries, err := os.ReadDir(*dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(*dir, e.Name()))
			if err != nil {
				return err
			}
			srv.Register(e.Name(), data)
			count++
		}
	case *useCorpus:
		for _, s := range repro.ScaledCorpus(*scale) {
			srv.Register(s.Name, s.Generate())
			count++
		}
	default:
		return fmt.Errorf("pass -dir or -corpus")
	}

	if *precompSch != "" {
		scheme, err := parseScheme(*precompSch)
		if err != nil {
			return err
		}
		for _, name := range srv.Files() {
			if err := srv.Precompress(name, scheme); err != nil {
				return fmt.Errorf("precompress %s: %w", name, err)
			}
		}
		fmt.Printf("precompressed %d files with %v\n", count, scheme)
	}

	var node *repro.ClusterNode
	if *nodeID != "" {
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			return err
		}
		if *peerAddr == "" {
			return fmt.Errorf("-node-id requires -peer-addr")
		}
		members := []string{*nodeID}
		for id := range peers {
			members = append(members, id)
		}
		node, err = repro.NewClusterNode(repro.ClusterConfig{
			Self:     *nodeID,
			Nodes:    members,
			Replicas: *replicas,
			HotK:     *hotK,
			Server:   srv,
			Events:   sink,
			Dial: func(id string) (net.Conn, error) {
				a, ok := peers[id]
				if !ok {
					return nil, fmt.Errorf("no address for peer %q", id)
				}
				return net.DialTimeout("tcp", a, 5*time.Second)
			},
		})
		if err != nil {
			return err
		}
		pln, err := net.Listen("tcp", *peerAddr)
		if err != nil {
			return err
		}
		node.Serve(pln)
		fmt.Printf("cluster node %s: ring %v, replicas %d, hotk %d, peer listener %s\n",
			*nodeID, node.Ring().Nodes(), *replicas, *hotK, pln.Addr())
	} else if *peersFlag != "" || *peerAddr != "" {
		return fmt.Errorf("-peers/-peer-addr require -node-id")
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("proxyd serving %d files on %s\n", count, bound)

	if *adminAddr != "" {
		ln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return err
		}
		adminSrv := &http.Server{Handler: srv.AdminHandler()}
		go func() { _ = adminSrv.Serve(ln) }()
		defer adminSrv.Close()
		fmt.Printf("admin listening on %s\n", ln.Addr())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1)
	for sig := range sigc {
		if sig == syscall.SIGUSR1 {
			fmt.Println(srv.Stats())
			continue
		}
		break
	}
	fmt.Println("shutting down")
	if node != nil {
		if err := node.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "proxyd: cluster node:", err)
		}
	}
	if err := srv.Close(); err != nil {
		return err
	}
	if err := sink.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "proxyd: event sink:", err)
	}
	if eventsFile != nil {
		if err := eventsFile.Close(); err != nil {
			return err
		}
	}
	fmt.Println(srv.Stats())
	return nil
}

// parsePeers parses the -peers "id=host:port,id=host:port" list.
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	if s == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=host:port)", part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate peer ID %q", id)
		}
		peers[id] = addr
	}
	return peers, nil
}

func parseScheme(name string) (repro.Scheme, error) {
	switch name {
	case "gzip":
		return repro.Gzip, nil
	case "compress":
		return repro.Compress, nil
	case "bzip2":
		return repro.Bzip2, nil
	case "zlib":
		return repro.Zlib, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", name)
	}
}
