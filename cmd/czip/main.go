// Command czip compresses and decompresses files with the repository's
// from-scratch codecs: gzip (DEFLATE), compress (LZW), bzip2 (BWT) and
// zlib.
//
// Usage:
//
//	czip -scheme gzip -level 9 < raw > raw.gz
//	czip -d -scheme gzip < raw.gz > raw
//	czip -scheme bzip2 -stats < input > output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "czip:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		schemeName = flag.String("scheme", "gzip", "compression scheme: gzip, compress, bzip2, zlib")
		level      = flag.Int("level", 0, "level (1-9; 9-16 bits for compress; 0 = paper setting)")
		decompress = flag.Bool("d", false, "decompress instead of compress")
		stats      = flag.Bool("stats", false, "print size statistics to stderr")
		maxSize    = flag.Int("maxsize", 1<<30, "decompression output bound in bytes")
	)
	flag.Parse()

	scheme, err := parseScheme(*schemeName)
	if err != nil {
		return err
	}
	c, err := repro.NewCodec(scheme, *level)
	if err != nil {
		return err
	}
	// gzip streams in constant memory; the block codecs buffer.
	if scheme == repro.Gzip {
		return runGzipStream(*decompress, *level, *stats)
	}
	in, err := io.ReadAll(os.Stdin)
	if err != nil {
		return fmt.Errorf("read stdin: %w", err)
	}
	var out []byte
	if *decompress {
		out, err = c.Decompress(in, *maxSize)
	} else {
		out, err = c.Compress(in)
	}
	if err != nil {
		return err
	}
	if _, err := os.Stdout.Write(out); err != nil {
		return err
	}
	if *stats {
		raw, comp := len(in), len(out)
		if *decompress {
			raw, comp = len(out), len(in)
		}
		fmt.Fprintf(os.Stderr, "%s: raw %d bytes, compressed %d bytes, factor %.3f\n",
			scheme, raw, comp, repro.CompressionFactor(raw, comp))
	}
	return nil
}

// runGzipStream pipes stdin to stdout through the streaming codec.
func runGzipStream(decompress bool, level int, stats bool) error {
	if level == 0 {
		level = 9
	}
	var rawN, compN int64
	if decompress {
		zr := repro.NewGzipReader(os.Stdin)
		n, err := io.Copy(os.Stdout, zr)
		if err != nil {
			return err
		}
		rawN = n
	} else {
		zw, err := repro.NewGzipWriter(&countingWriter{w: os.Stdout, n: &compN}, level)
		if err != nil {
			return err
		}
		n, err := io.Copy(zw, os.Stdin)
		if err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		rawN = n
	}
	if stats {
		fmt.Fprintf(os.Stderr, "gzip (streaming): raw %d bytes", rawN)
		if !decompress {
			fmt.Fprintf(os.Stderr, ", compressed %d bytes, factor %.3f",
				compN, repro.CompressionFactor(int(rawN), int(compN)))
		}
		fmt.Fprintln(os.Stderr)
	}
	return nil
}

type countingWriter struct {
	w io.Writer
	n *int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	*c.n += int64(n)
	return n, err
}

func parseScheme(name string) (repro.Scheme, error) {
	switch name {
	case "gzip":
		return repro.Gzip, nil
	case "compress":
		return repro.Compress, nil
	case "bzip2":
		return repro.Bzip2, nil
	case "zlib":
		return repro.Zlib, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", name)
	}
}
