// Command hhfetch is the handheld-side client: it downloads a file from a
// proxyd instance with a chosen scheme and transfer mode, verifies the
// content, and reports the wire statistics together with the simulated
// iPAQ energy estimate for the transfer at the chosen link rate.
//
// Usage:
//
//	hhfetch -addr 127.0.0.1:7070 -list
//	hhfetch -addr 127.0.0.1:7070 -name nes96.xml -scheme gzip -mode selective -rate 11
//	hhfetch -addr 127.0.0.1:7070 -name nes96.xml -trace
//
// With -trace, the fetch's phase timeline (dial, header, recv,
// decompress, verify, plus backoff/resume on retries) prints as JSON
// last; each phase carries the modeled joules attributed to it, and the
// phase total equals the whole-transfer model estimate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hhfetch:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "proxy address")
		list       = flag.Bool("list", false, "list server files and exit")
		name       = flag.String("name", "", "file to fetch")
		schemeName = flag.String("scheme", "gzip", "scheme: gzip, compress, bzip2, zlib")
		modeName   = flag.String("mode", "selective", "mode: raw, precompressed, ondemand, selective")
		rateMbps   = flag.Float64("rate", 11, "nominal link rate for the energy estimate: 11, 5.5, 2, 1")
		outPath    = flag.String("o", "", "write fetched content to this file")
		timeout    = flag.Duration("timeout", 2*time.Minute, "per-attempt deadline (0 disables)")
		retries    = flag.Int("retries", 3, "retry budget for busy servers and transient link failures")
		retryBase  = flag.Duration("retry-base", 50*time.Millisecond, "initial retry backoff (doubles per attempt, with jitter)")
		maxBytes   = flag.Int64("max-bytes", 0, "refuse transfers whose claimed size exceeds this (0 = 1 GiB default)")
		trace      = flag.Bool("trace", false, "print the fetch's phase/energy span as JSON")
		eventsPath = flag.String("events", "", "append the fetch's wide event as JSONL to this file")
	)
	flag.Parse()

	model, err := modelForRate(*rateMbps)
	if err != nil {
		return err
	}
	cli := repro.NewProxyClient(*addr)
	cli.Timeout = *timeout
	cli.MaxRetries = *retries
	cli.RetryBaseDelay = *retryBase
	cli.MaxFetchBytes = *maxBytes
	cli.EnergyParams = &model
	var tracer *repro.Tracer
	if *trace {
		tracer = repro.NewTracer(4)
		cli.Tracer = tracer
	}
	if *eventsPath != "" {
		f, ferr := os.OpenFile(*eventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			return ferr
		}
		sink := repro.NewEventSink(f, 0, 0)
		defer func() {
			_ = sink.Close()
			_ = f.Close()
		}()
		cli.Events = sink
		cli.DeviceClass = repro.DeviceIPAQ11
		if *rateMbps == 2 {
			cli.DeviceClass = repro.DeviceIPAQ2
		}
		// Modeled link rate in bytes/s, the event stream's link_bps field.
		cli.LinkRateBps = *rateMbps * 1e6 / 8
	}
	if *list {
		names, err := cli.List()
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	}
	if *name == "" {
		return fmt.Errorf("pass -name or -list")
	}
	scheme, err := parseScheme(*schemeName)
	if err != nil {
		return err
	}
	mode, err := parseMode(*modeName)
	if err != nil {
		return err
	}
	content, stats, err := cli.Fetch(*name, scheme, mode)
	if err != nil {
		return err
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, content, 0o644); err != nil {
			return err
		}
	}

	fmt.Printf("fetched %q: %d bytes raw, %d on the wire (factor %.3f)\n",
		*name, stats.RawBytes, stats.WireBytes, stats.Factor)
	if stats.Attempts > 1 {
		fmt.Printf("link was hostile: %d attempts, %d bytes resumed instead of refetched\n",
			stats.Attempts, stats.ResumedBytes)
	}
	fmt.Printf("blocks: %d total, %d compressed; host decompress wall %.3f ms\n",
		stats.BlocksTotal, stats.BlocksCompressed, stats.DecompressWall.Seconds()*1000)

	s := float64(stats.RawBytes) / 1e6
	sc := float64(stats.WireBytes) / 1e6
	plain := model.DownloadEnergy(s)
	// The same rule the client charges its trace span with: Eq. 3 when
	// compressed blocks crossed the wire, Eq. 1 otherwise.
	this := plain
	if stats.BlocksCompressed > 0 {
		this = model.InterleavedEnergy(s, sc)
	}
	fmt.Printf("iPAQ energy estimate at %.1f Mb/s: plain %.4f J, this transfer %.4f J (%.1f%% saving)\n",
		*rateMbps, plain, this, (1-this/plain)*100)

	if *trace {
		spans := tracer.Snapshot()
		if len(spans) > 0 {
			span := spans[len(spans)-1]
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(span); err != nil {
				return err
			}
		}
	}
	return nil
}

func modelForRate(mbps float64) (repro.EnergyModel, error) {
	switch mbps {
	case 11, 5.5, 1:
		// Only 11 and 2 Mb/s were measured by the paper; intermediate
		// rates use the 11 Mb/s power structure with scaled timing, which
		// the model captures via the rate config used in simulation. For
		// the quick estimate here, 11 Mb/s parameters apply.
		return repro.Params11Mbps(), nil
	case 2:
		return repro.Params2Mbps(), nil
	default:
		return repro.EnergyModel{}, fmt.Errorf("unsupported rate %.1f", mbps)
	}
}

func parseScheme(name string) (repro.Scheme, error) {
	switch name {
	case "gzip":
		return repro.Gzip, nil
	case "compress":
		return repro.Compress, nil
	case "bzip2":
		return repro.Bzip2, nil
	case "zlib":
		return repro.Zlib, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", name)
	}
}

func parseMode(name string) (repro.ProxyClientMode, error) {
	switch name {
	case "raw":
		return repro.ProxyRaw, nil
	case "precompressed":
		return repro.ProxyPrecompressed, nil
	case "ondemand":
		return repro.ProxyOnDemand, nil
	case "selective":
		return repro.ProxySelective, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}
