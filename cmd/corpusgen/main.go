// Command corpusgen materialises the synthetic Table 2 corpus to disk so
// the proxy daemon and external tools can serve the same deterministic
// files the experiments use.
//
// Usage:
//
//	corpusgen -out ./corpus -scale 0.125
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		outDir = flag.String("out", "corpus", "output directory")
		scale  = flag.Float64("scale", 1.0, "size scale for large files (small files keep true sizes)")
		list   = flag.Bool("list", false, "list the corpus without writing files")
	)
	flag.Parse()

	specs := repro.ScaledCorpus(*scale)
	if *list {
		fmt.Printf("%-24s %10s %-28s %8s %8s %8s\n", "name", "size", "description", "gzip", "compress", "bzip2")
		for _, s := range specs {
			fmt.Printf("%-24s %10d %-28s %8.2f %8.2f %8.2f\n",
				s.Name, s.Size, s.Description, s.PaperGzip, s.PaperCompress, s.PaperBzip2)
		}
		return nil
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	total := 0
	for _, s := range specs {
		data := s.Generate()
		path := filepath.Join(*outDir, s.Name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		total += len(data)
	}
	fmt.Printf("wrote %d files (%d bytes) to %s\n", len(specs), total, *outDir)
	return nil
}
