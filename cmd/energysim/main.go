// Command energysim regenerates the paper's tables and figures on the
// simulated iPAQ/WaveLAN testbed and prints them as text tables.
//
// Usage:
//
//	energysim -scale 0.125 table2
//	energysim -scale 0.125 fig2
//	energysim all
//
// Experiment ids: table1 table2 table3 fig1 fig2 fig3 fig4 fig5 fig6 fig7
// fig8 fig9 fig11 fig12 fig13 thresholds upload ablation-levels
// ablation-blocksize ablation-meter all. (Figure 10 is the algorithm
// itself: internal/selective.)
//
// The soak subcommand replays a deterministic multi-client scenario on the
// virtual testbed (internal/harness) and checks every invariant oracle:
//
//	energysim soak -seed 42
//	energysim soak -seed 42 -clients 4 -fetches 10 -fault 0.02 -trace
//	energysim soak -scenario testdata/scenarios/rate-cliff.scn -seed 1 -trace
//
// With -scenario the soak shape comes from a declarative spec file
// (internal/scenario) — fleet size, link schedule, workload corpus and
// expected-outcome bounds — and the ad-hoc shape flags are ignored.
// The same seed always produces a byte-identical trace, so any soak
// failure CI reports can be replayed locally from its printed seed.
// With -events FILE the soak also writes its canonical wide-event stream
// as JSONL (same determinism guarantee), and -calib prints the post-run
// calibration report: energy-model coefficients re-fitted from that
// telemetry against the paper's Table 1.
//
// -decider selects the selective-mode policy (static Eq. 6 or the
// queue-aware dynamic decider), -deadline and -budget declare the
// fleet's request attributes, and -differential runs the paired
// static-vs-dynamic oracle instead of a single run:
//
//	energysim soak -seed 1 -decider dynamic -deadline standard -budget 50
//	energysim soak -seed 1 -differential
//
// The calib subcommand fits a previously exported event stream:
//
//	energysim calib -events soak.jsonl
//	energysim calib -events soak.jsonl -window 10s
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"

	"repro/internal/calib"
	"repro/internal/decider"
	"repro/internal/experiment"
	"repro/internal/harness"
	"repro/internal/obs/agg"
	"repro/internal/obs/export"
	"repro/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "energysim:", err)
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) > 1 && os.Args[1] == "soak" {
		return runSoak(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "calib" {
		return runCalib(os.Args[2:])
	}
	var (
		scale  = flag.Float64("scale", 0.125, "corpus size scale for large files")
		nLarge = flag.Int("large", 0, "limit to first N large files (0 = all)")
		nSmall = flag.Int("small", 0, "limit to first N small files (0 = all)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		return fmt.Errorf("pass an experiment id (table1..table3, fig1..fig13, thresholds, all)")
	}
	cfg := experiment.Config{Scale: *scale, LargeSubset: *nLarge, SmallSubset: *nSmall}

	ids := flag.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = []string{"table1", "table2", "table3", "fig1", "fig2", "fig3", "fig4",
			"fig5", "fig6", "fig7", "fig8", "fig9", "fig11", "fig12", "fig13", "thresholds",
			"upload", "ablation-levels", "ablation-blocksize", "ablation-meter", "policy", "battery", "trace"}
	}
	for _, id := range ids {
		out, err := runOne(cfg, id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(out)
	}
	return nil
}

// runSoak runs one seeded soak scenario on the virtual testbed, prints
// either the full canonical trace or a digest summary, and fails (exit 1)
// if any invariant oracle or scenario bound is violated — the error
// names the first violation so CI logs lead with the actual failure,
// not just a count.
func runSoak(argv []string) error {
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "scenario seed; same seed => byte-identical trace")
		specPath = fs.String("scenario", "", "declarative scenario spec file; overrides the shape flags")
		clients  = fs.Int("clients", 10, "concurrent clients")
		fetches  = fs.Int("fetches", 50, "fetches per client")
		fault    = fs.Float64("fault", 0.01, "per-operation fault probability (fragment/reset/truncate/bit-flip)")
		churn    = fs.Int("churn", 100, "cache-churn re-registrations over the run (0 = off)")
		trace    = fs.Bool("trace", false, "print the full canonical trace instead of the digest")
		events   = fs.String("events", "", "write the canonical wide-event stream as JSONL to this file")
		calibOut = fs.Bool("calib", false, "print the post-run calibration report (model re-fit from telemetry)")
		deciderP = fs.String("decider", "", "selective-mode decision policy: static (default, Eq. 6) or dynamic")
		deadline = fs.String("deadline", "", "fleet deadline class: none, relaxed, standard or strict")
		budget   = fs.Float64("budget", 0, "per-client advisory energy budget in joules (0 = undeclared)")
		diff     = fs.Bool("differential", false, "run the paired static-vs-dynamic differential oracle instead of a single run")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *deciderP != "" && *deciderP != "static" && *deciderP != "dynamic" {
		return fmt.Errorf("soak: -decider %q: want static or dynamic", *deciderP)
	}
	class, ok := decider.ParseClass(*deadline)
	if !ok {
		return fmt.Errorf("soak: -deadline %q: want none, relaxed, standard or strict", *deadline)
	}

	if *diff {
		return runDifferential(*specPath, *seed, *clients, *fetches, *fault, *churn, uint8(class), *budget)
	}

	var (
		r      *harness.Report
		err    error
		replay string
	)
	if *specPath != "" {
		spec, serr := scenario.Load(*specPath)
		if serr != nil {
			return serr
		}
		r, err = spec.Run(*seed)
		replay = fmt.Sprintf("energysim soak -scenario %s -seed %d -trace", *specPath, *seed)
	} else {
		sc := harness.Default(*seed)
		sc.Clients = *clients
		sc.FetchesPerClient = *fetches
		sc.FaultRate = *fault
		sc.Churn = *churn
		sc.Decider = *deciderP
		sc.DeadlineClass = uint8(class)
		sc.BudgetJ = *budget
		r, err = harness.Run(sc)
		replay = fmt.Sprintf("energysim soak -seed %d -clients %d -fetches %d -fault %g -churn %d -trace",
			*seed, *clients, *fetches, *fault, *churn)
		if *deciderP != "" || *deadline != "" || *budget != 0 {
			replay += fmt.Sprintf(" -decider %s -deadline %s -budget %g", *deciderP, *deadline, *budget)
		}
	}
	if err != nil {
		return err
	}
	tr := r.Trace()
	if *trace {
		fmt.Print(tr)
	} else {
		ok, retried := 0, 0
		for _, rec := range r.Records {
			if rec.Err == "" {
				ok++
			}
			if rec.Stats.Attempts > 1 {
				retried++
			}
		}
		sum := sha256.Sum256([]byte(tr))
		fmt.Printf("soak seed=%d: %d fetches (%d ok, %d retried) in %s virtual; trace sha256=%x\n",
			*seed, len(r.Records), ok, retried, r.Elapsed, sum[:8])
	}
	if *events != "" {
		f, ferr := os.Create(*events)
		if ferr != nil {
			return ferr
		}
		werr := export.WriteJSONL(f, r.Events())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("soak seed=%d: writing events: %w", *seed, werr)
		}
	}
	if *calibOut {
		fits, cerr := calib.Calibrate(r.Events())
		if cerr != nil {
			return fmt.Errorf("soak seed=%d: %w", *seed, cerr)
		}
		fmt.Print(calib.Render(fits))
	}
	for _, v := range r.Violations {
		fmt.Fprintln(os.Stderr, "oracle violation:", v)
	}
	if len(r.Violations) > 0 {
		return fmt.Errorf("soak seed=%d: %d oracle violations; first: %s (replay: %s)",
			*seed, len(r.Violations), r.Violations[0], replay)
	}
	return nil
}

// runDifferential executes the paired static-vs-dynamic differential
// oracle (internal/harness.RunPaired): the same seeded scenario runs
// under both deciders, payloads must stay byte-exact, and the dynamic
// policy's modeled corpus energy must never exceed the static policy's.
func runDifferential(specPath string, seed int64, clients, fetches int, fault float64, churn int, class uint8, budget float64) error {
	var sc harness.Scenario
	if specPath != "" {
		spec, err := scenario.Load(specPath)
		if err != nil {
			return err
		}
		sc = spec.Compile(seed)
	} else {
		sc = harness.Default(seed)
		sc.Clients = clients
		sc.FetchesPerClient = fetches
		sc.FaultRate = fault
		sc.Churn = churn
		sc.DeadlineClass = class
		sc.BudgetJ = budget
	}
	d, err := harness.RunPaired(sc)
	if err != nil {
		return err
	}
	saved := 0.0
	if d.StaticJ > 0 {
		saved = 100 * (1 - d.DynamicJ/d.StaticJ)
	}
	fmt.Printf("differential seed=%d: corpus model energy static %.4g J, dynamic %.4g J (%.2f%% saved)\n",
		seed, d.StaticJ, d.DynamicJ, saved)
	for _, v := range d.Violations {
		fmt.Fprintln(os.Stderr, "differential violation:", v)
	}
	if !d.OK() {
		return fmt.Errorf("differential seed=%d: %d violations; first: %s", seed, len(d.Violations), d.Violations[0])
	}
	return nil
}

// runCalib re-fits the energy model from a previously exported event
// stream and prints the calibration report; with -window it also prints
// the windowed (scheme, device) rollup table over virtual time.
func runCalib(argv []string) error {
	fs := flag.NewFlagSet("calib", flag.ContinueOnError)
	var (
		eventsPath = fs.String("events", "", "JSONL wide-event stream to calibrate (required)")
		window     = fs.Duration("window", 0, "also print windowed rollups at this width (virtual time)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *eventsPath == "" {
		return fmt.Errorf("calib: -events FILE is required")
	}
	f, err := os.Open(*eventsPath)
	if err != nil {
		return err
	}
	evs, err := export.ReadJSONL(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("calib: reading %s: %w", *eventsPath, err)
	}
	if *window > 0 {
		a := agg.New(*window)
		for _, e := range evs {
			a.Observe(e)
		}
		fmt.Print(agg.Render(a.Snapshot()))
		fmt.Println()
	}
	fits, err := calib.Calibrate(evs)
	if err != nil {
		return err
	}
	fmt.Print(calib.Render(fits))
	return nil
}

func runOne(cfg experiment.Config, id string) (string, error) {
	switch id {
	case "table1":
		return experiment.RenderTable1(experiment.Table1()), nil
	case "table2":
		rows, err := cfg.Table2()
		if err != nil {
			return "", err
		}
		return experiment.RenderTable2(rows), nil
	case "table3":
		return experiment.RenderTable3(), nil
	case "fig1", "fig2":
		comps, err := cfg.SchemeComparison()
		if err != nil {
			return "", err
		}
		if id == "fig1" {
			return experiment.RenderBars(
				"Figure 1: time comparison (relative to uncompressed download)", "time", comps), nil
		}
		return experiment.RenderBars(
			"Figure 2: energy comparison (relative to uncompressed download)", "energy", comps), nil
	case "fig3":
		b, err := cfg.Fig3IdleBreakdown(2_000_000)
		if err != nil {
			return "", err
		}
		return experiment.RenderFig3(b), nil
	case "fig4":
		s, err := cfg.Fig4Scenarios()
		if err != nil {
			return "", err
		}
		return experiment.RenderFig4(s), nil
	case "fig5", "fig6":
		comps, err := cfg.InterleavingComparison()
		if err != nil {
			return "", err
		}
		if id == "fig5" {
			return experiment.RenderBars(
				"Figure 5: effect of interleaving on time (gzip | zlib | zlib interleaved)", "time", comps), nil
		}
		return experiment.RenderBars(
			"Figure 6: effect of interleaving on energy (gzip | zlib | zlib interleaved)", "energy", comps), nil
	case "fig7":
		s, err := cfg.Fig7InterleaveErrors()
		if err != nil {
			return "", err
		}
		return experiment.RenderErrorSeries("Figure 7: error rate of energy estimation for interleaving", s), nil
	case "fig8":
		fits, err := cfg.Fig8Fits()
		if err != nil {
			return "", err
		}
		return experiment.RenderFig8(fits), nil
	case "fig9":
		series, err := cfg.Fig9BitrateErrors()
		if err != nil {
			return "", err
		}
		return experiment.RenderErrorSeries("Figure 9: error rate of energy estimation (11 vs 2 Mb/s)", series...), nil
	case "fig11":
		comps, err := cfg.SelectiveComparison()
		if err != nil {
			return "", err
		}
		return experiment.RenderBars(
			"Figure 11: effect of the block-by-block adaptive scheme (time & energy as 'relative')", "energy", comps), nil
	case "fig12", "fig13":
		comps, err := cfg.OnDemandComparison()
		if err != nil {
			return "", err
		}
		if id == "fig12" {
			return experiment.RenderBars(
				"Figure 12: time comparison, compression on demand (gzip | compress | zlib interleaved)", "time", comps), nil
		}
		return experiment.RenderBars(
			"Figure 13: energy comparison, compression on demand (gzip | compress | zlib interleaved)", "energy", comps), nil
	case "thresholds":
		return experiment.RenderThresholds(experiment.Thresholds()), nil
	case "upload":
		rows, err := cfg.UploadComparison()
		if err != nil {
			return "", err
		}
		return experiment.RenderUploadComparison(rows), nil
	case "ablation-levels":
		rows, err := cfg.AblationLevels()
		if err != nil {
			return "", err
		}
		return experiment.RenderAblationLevels(rows), nil
	case "ablation-blocksize":
		rows, err := cfg.AblationBlockSize()
		if err != nil {
			return "", err
		}
		return experiment.RenderAblationBlockSize(rows), nil
	case "ablation-meter":
		rows, err := cfg.AblationMeterRate()
		if err != nil {
			return "", err
		}
		return experiment.RenderAblationMeterRate(rows), nil
	case "battery":
		rows, err := cfg.BatteryComparison()
		if err != nil {
			return "", err
		}
		return experiment.RenderBatteryComparison(rows), nil
	case "policy":
		rows, err := cfg.PolicyComparison()
		if err != nil {
			return "", err
		}
		return experiment.RenderPolicyComparison(rows), nil
	case "trace":
		traces, err := cfg.Trace(400_000)
		if err != nil {
			return "", err
		}
		return experiment.RenderTraceSummary(traces), nil
	case "trace-csv":
		traces, err := cfg.Trace(400_000)
		if err != nil {
			return "", err
		}
		return experiment.RenderTraceCSV(traces), nil
	default:
		return "", fmt.Errorf("unknown experiment id %q", id)
	}
}
