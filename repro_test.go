package repro_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro"
)

func TestFacadeCodecRoundTrip(t *testing.T) {
	data := []byte(strings.Repeat("public api round trip ", 2000))
	for _, s := range repro.Schemes() {
		c, err := repro.NewCodec(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		comp, err := c.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decompress(comp, 0)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%v: round trip failed: %v", s, err)
		}
		if repro.CompressionFactor(len(data), len(comp)) < 2 {
			t.Errorf("%v: factor too low", s)
		}
	}
}

func TestFacadeEnergyModel(t *testing.T) {
	m := repro.Params11Mbps()
	if e := m.DownloadEnergy(1.0); e < 3.4 || e > 3.7 {
		t.Errorf("E(1MB) = %v", e)
	}
	if !repro.ShouldCompress(1_000_000, 400_000) {
		t.Error("factor 2.5 on 1 MB should compress")
	}
	if repro.ShouldCompress(2000, 100) {
		t.Error("sub-threshold file should not compress")
	}
}

func TestFacadeRunExperiment(t *testing.T) {
	data := []byte(strings.Repeat("experiment through the facade ", 10000))
	res, err := repro.RunExperiment(repro.ExperimentSpec{
		Data:   data,
		Scheme: repro.Gzip,
		Mode:   repro.ModeInterleaved,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExactEnergyJ <= 0 || res.Factor < 2 {
		t.Errorf("result: %+v", res)
	}
}

func TestFacadeSelective(t *testing.T) {
	data := repro.GenerateMixedFile(512_000, 7)
	c, err := repro.NewCodec(repro.Zlib, 9)
	if err != nil {
		t.Fatal(err)
	}
	stream, stats, err := repro.SelectiveEncode(data, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlocksCompressed == 0 || stats.BlocksCompressed == stats.BlocksTotal {
		t.Errorf("mixed decisions expected: %d/%d", stats.BlocksCompressed, stats.BlocksTotal)
	}
	got, err := repro.SelectiveDecode(stream, 0)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("selective round trip: %v", err)
	}
}

func TestFacadeProxy(t *testing.T) {
	srv := repro.NewProxyServer(nil)
	content := []byte(strings.Repeat("proxy through the facade ", 5000))
	srv.Register("file.txt", content)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	got, stats, err := repro.NewProxyClient(addr).Fetch("file.txt", repro.Gzip, repro.ProxySelective)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("content mismatch")
	}
	if stats.Factor < 2 {
		t.Errorf("factor %.2f", stats.Factor)
	}
}

func TestFacadeCorpus(t *testing.T) {
	if len(repro.Corpus()) != 37 {
		t.Errorf("corpus size %d", len(repro.Corpus()))
	}
	scaled := repro.ScaledCorpus(0.1)
	if scaled[0].Size >= repro.Corpus()[0].Size {
		t.Error("scaling had no effect")
	}
}

func TestFacadeSessionAndBattery(t *testing.T) {
	reqs := repro.WebSession(5, time.Second, 50_000, 1)
	res, err := repro.RunSession(repro.SessionSpec{
		Requests: reqs, Policy: repro.PolicyHardwarePS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyJ <= 0 {
		t.Errorf("session energy %v", res.EnergyJ)
	}
	b := repro.IPAQBattery()
	if b.Operations(res.EnergyJ) <= 0 {
		t.Error("battery operations")
	}
}
