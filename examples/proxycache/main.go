// Proxycache: run the proxy server and the handheld client in one process
// over loopback TCP, downloading part of the paper's corpus in each
// transfer mode and comparing bytes on the wire and estimated energy — the
// paper's testbed, end to end.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	srv := repro.NewProxyServer(nil)
	// Serve a slice of the Table 2 corpus: one highly compressible file,
	// one binary, one incompressible media file.
	for _, spec := range repro.ScaledCorpus(0.05) {
		switch spec.Name {
		case "nes96.xml", "pegwit", "image01.jpg":
			srv.Register(spec.Name, spec.Generate())
		}
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Println("proxy serving on", addr)

	cli := repro.NewProxyClient(addr)
	names, err := cli.List()
	if err != nil {
		return err
	}
	model := repro.Params11Mbps()

	for _, name := range names {
		fmt.Printf("\n=== %s ===\n", name)
		fmt.Printf("%-14s %10s %10s %8s %10s %10s\n",
			"mode", "raw", "wire", "factor", "blocks", "energy J")
		for _, mode := range []repro.ProxyClientMode{
			repro.ProxyRaw, repro.ProxyPrecompressed, repro.ProxyOnDemand, repro.ProxySelective,
		} {
			content, stats, err := cli.Fetch(name, repro.Gzip, mode)
			if err != nil {
				return fmt.Errorf("%s/%v: %w", name, mode, err)
			}
			_ = content // verified inside Fetch via CRC
			e := model.InterleavedEnergy(float64(stats.RawBytes)/1e6, float64(stats.WireBytes)/1e6)
			if mode == repro.ProxyRaw {
				e = model.DownloadEnergy(float64(stats.RawBytes) / 1e6)
			}
			fmt.Printf("%-14v %10d %10d %8.2f %6d/%-3d %10.4f\n",
				mode, stats.RawBytes, stats.WireBytes, stats.Factor,
				stats.BlocksCompressed, stats.BlocksTotal, e)
		}
	}
	fmt.Println("\nnote: selective mode never compresses blocks that fail the Equation 6 test,")
	fmt.Println("so on the jpeg it ships raw blocks while on-demand mode wastes CPU compressing them.")
	return nil
}
