// Upload: the extension the paper's introduction raises — the handheld
// uploads "lively captured voice and pictures" through the proxy. The
// trade-off reverses: the handheld's slow CPU pays for compression while
// the radio saving stays the same, so the effort level matters far more
// than on downloads.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Captured voice: correlated PCM samples, gzip factor ~1.3-2.
	voice := voiceData(1_500_000)
	// Captured notes: text, factor ~4+.
	var notes []byte
	for _, s := range repro.ScaledCorpus(0.15) {
		if s.Name == "input.source" {
			notes = s.Generate()
		}
	}

	for _, payload := range []struct {
		name string
		data []byte
	}{{"voice recording (PCM)", voice}, {"meeting notes (text)", notes}} {
		fmt.Printf("=== uploading %s (%d bytes) ===\n", payload.name, len(payload.data))
		fmt.Printf("%-20s %8s %12s %12s %10s\n", "strategy", "factor", "time s", "energy J", "stall s")

		plain, err := repro.RunUpload(repro.UploadSpec{Data: payload.data})
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %8.2f %12.3f %12.3f %10.3f\n",
			"raw", 1.0, plain.TotalSeconds.Seconds(), plain.ExactEnergyJ, 0.0)

		for _, strat := range []struct {
			label     string
			level     int
			selective bool
		}{
			{"zlib -9", 9, false},
			{"zlib -1", 1, false},
			{"zlib -1 adaptive", 1, true},
		} {
			res, err := repro.RunUpload(repro.UploadSpec{
				Data: payload.data, Scheme: repro.Zlib, Level: strat.level,
				Compressed: true, Selective: strat.selective,
			})
			if err != nil {
				return err
			}
			fmt.Printf("%-20s %8.2f %12.3f %12.3f %10.3f\n",
				strat.label, res.Factor, res.TotalSeconds.Seconds(),
				res.ExactEnergyJ, res.StallSeconds.Seconds())
		}
		fmt.Println()
	}
	fmt.Println("on the 206 MHz handheld, maximum-effort compression nearly cancels the radio")
	fmt.Println("saving; a light effort level keeps most of the factor at a fraction of the CPU cost.")
	fmt.Println("the adaptive uploader probes each block with a small sample and ships barely-")
	fmt.Println("compressible data raw, bounding the loss to the probe overhead.")
	return nil
}

// voiceData synthesises correlated 16-bit PCM, like a dictation recording.
func voiceData(n int) []byte {
	out := make([]byte, n)
	level := 0
	seed := uint32(12345)
	for i := 0; i+1 < n; i += 2 {
		seed = seed*1664525 + 1013904223
		level += int(seed%129) - 64
		if level > 30000 {
			level = 30000
		}
		if level < -30000 {
			level = -30000
		}
		out[i] = byte(level)
		out[i+1] = byte(level >> 8)
	}
	return out
}
