// Quickstart: compress a document with the three schemes, estimate the
// handheld's download energy for each, and let the paper's Equation 6
// decide whether compression is worth it.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	// A typical "document" a handheld would download via a proxy: varied
	// prose rather than one repeated line, so the factors are realistic.
	var sb strings.Builder
	sentences := []string{
		"Wireless-networked handheld devices download data through proxy servers.",
		"Compressing the data saves radio energy but costs CPU energy to decompress.",
		"The trade-off depends on the compression factor and the link bandwidth.",
		"An energy model lets the proxy decide per block whether to compress.",
		"Decompression efficiency matters more than the deepest compression factor.",
	}
	for i := 0; sb.Len() < 600_000; i++ {
		sb.WriteString(fmt.Sprintf("[section %d, revision %d] ", i, i*i%97))
		sb.WriteString(sentences[i%len(sentences)])
		sb.WriteByte('\n')
	}
	doc := []byte(sb.String())

	model := repro.Params11Mbps()
	s := float64(len(doc)) / 1e6
	plainJ := model.DownloadEnergy(s)
	fmt.Printf("document: %d bytes; uncompressed download at 11 Mb/s costs %.3f J\n\n", len(doc), plainJ)

	fmt.Printf("%-10s %12s %8s %14s %14s %s\n",
		"scheme", "compressed", "factor", "interleaved J", "saving", "compress?")
	for _, scheme := range repro.Schemes() {
		c, err := repro.NewCodec(scheme, 0) // paper settings: -9 / -b16 / -9
		if err != nil {
			log.Fatal(err)
		}
		comp, err := c.Compress(doc)
		if err != nil {
			log.Fatal(err)
		}
		// Verify the round trip, as any real consumer would.
		back, err := c.Decompress(comp, len(doc))
		if err != nil || len(back) != len(doc) {
			log.Fatalf("%v round trip failed: %v", scheme, err)
		}
		sc := float64(len(comp)) / 1e6
		e := model.InterleavedEnergy(s, sc)
		fmt.Printf("%-10s %12d %8.2f %14.3f %13.1f%% %v\n",
			scheme, len(comp), repro.CompressionFactor(len(doc), len(comp)),
			e, (1-e/plainJ)*100, repro.ShouldCompress(len(doc), len(comp)))
	}

	fmt.Printf("\npaper thresholds: never compress files under %d bytes;\n", repro.FileThresholdBytes)
	fmt.Printf("large files need a compression factor above %.2f to save energy.\n",
		model.ThresholdFactor(4.0))
}
