// Bitratesweep: show how the compression trade-off shifts with the
// wireless link rate (Section 4.2): at 11 Mb/s only factors above ~1.13
// pay off, while at 2 Mb/s communication is so expensive that almost any
// compression wins, and filling all idle time would need a factor of ~27.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One representative binary (factor ~2.3) at each rate point.
	data := repro.ScaledCorpus(0.1)
	var binary []byte
	for _, s := range data {
		if s.Name == "input.program" {
			binary = s.Generate()
		}
	}
	if binary == nil {
		return fmt.Errorf("corpus file missing")
	}

	fmt.Printf("%-8s %12s %12s %12s %10s\n", "rate", "plain J", "gzip J", "saving", "stall s")
	for _, rate := range []repro.RateConfig{
		repro.Rate11Mbps(), repro.Rate5_5Mbps(), repro.Rate2Mbps(), repro.Rate1Mbps(),
	} {
		plain, err := repro.RunExperiment(repro.ExperimentSpec{
			Data: binary, Mode: repro.ModePlain, Rate: rate,
		})
		if err != nil {
			return err
		}
		comp, err := repro.RunExperiment(repro.ExperimentSpec{
			Data: binary, Scheme: repro.Gzip, Mode: repro.ModeInterleaved, Rate: rate,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %12.3f %12.3f %11.1f%% %10.3f\n",
			rate.Name, plain.ExactEnergyJ, comp.ExactEnergyJ,
			(1-comp.ExactEnergyJ/plain.ExactEnergyJ)*100, comp.StallSeconds.Seconds())
	}

	fmt.Println("\nmodel-derived break-even factors (large file):")
	for _, m := range []struct {
		name  string
		model repro.EnergyModel
	}{
		{"11Mb/s", repro.Params11Mbps()},
		{"2Mb/s", repro.Params2Mbps()},
	} {
		fmt.Printf("  %-8s need factor > %.3f; fill-idle factor %.1f\n",
			m.name, m.model.ThresholdFactor(4.0), m.model.FillIdleFactor())
	}
	return nil
}
