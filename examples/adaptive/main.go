// Adaptive: apply the paper's block-by-block selective scheme (Figure 10)
// to a tar-like file that mixes compressible text with already-encoded
// media, then compare blind compression, selective compression and no
// compression on the simulated handheld.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 2 MB tar-like file: alternating 128 kB text and media blocks.
	data := repro.GenerateMixedFile(2_000_000, 2003)

	c, err := repro.NewCodec(repro.Zlib, 9)
	if err != nil {
		return err
	}
	stream, stats, err := repro.SelectiveEncode(data, c, nil)
	if err != nil {
		return err
	}
	fmt.Printf("selective container: %d -> %d bytes (factor %.3f), %d/%d blocks compressed\n",
		stats.RawBytes, stats.WireBytes, stats.Factor, stats.BlocksCompressed, stats.BlocksTotal)

	back, err := repro.SelectiveDecode(stream, len(data))
	if err != nil {
		return err
	}
	if len(back) != len(data) {
		return fmt.Errorf("round trip lost bytes: %d != %d", len(back), len(data))
	}
	fmt.Println("round trip verified")

	// Now the energy comparison on the simulated iPAQ.
	fmt.Printf("\n%-18s %10s %10s %12s %10s\n", "strategy", "wire", "factor", "time s", "energy J")
	type runCase struct {
		label string
		spec  repro.ExperimentSpec
	}
	for _, rc := range []runCase{
		{"uncompressed", repro.ExperimentSpec{Data: data, Mode: repro.ModePlain}},
		{"blind zlib", repro.ExperimentSpec{Data: data, Scheme: repro.Zlib, Mode: repro.ModeInterleaved}},
		{"selective zlib", repro.ExperimentSpec{Data: data, Scheme: repro.Zlib, Mode: repro.ModeInterleaved, Selective: true}},
	} {
		res, err := repro.RunExperiment(rc.spec)
		if err != nil {
			return fmt.Errorf("%s: %w", rc.label, err)
		}
		fmt.Printf("%-18s %10d %10.3f %12.3f %10.3f\n",
			rc.label, res.WireBytes, res.Factor, res.TotalSeconds.Seconds(), res.ExactEnergyJ)
	}
	fmt.Println("\nthe selective scheme skips the media blocks, cutting decompression work")
	fmt.Println("while keeping the text blocks' wire savings — it never loses to either baseline.")
	return nil
}
